package workloads

import (
	"fmt"

	"babelfish/internal/kernel"
	"babelfish/internal/memdefs"
	"babelfish/internal/sim"
)

// FaaSGroup is the paper's serverless deployment: one CCID group holding
// several *different* functions that share the OpenFaaS runtime image
// (infrastructure + common libraries), each function with its own small
// binary, input data and private state. The paper runs three functions
// per core and finds ~90% of the shareable pte_ts are infrastructure
// pages shared across the functions.
type FaaSGroup struct {
	M     *sim.Machine
	Group *kernel.Group

	Infra *kernel.File
	Libs  *kernel.File
	Input *kernel.File // one input dataset shared by the three functions
	// ("the three containers access different data, but
	// there is partial overlap in the data pages accessed")

	RInfra, RLibs, RInput kernel.Region

	Template *kernel.Process

	fns   map[string]*faasFn
	scale float64
	seq   int

	Tasks []*sim.Task
}

type faasFn struct {
	behavior FuncBehavior
	lines    int
	bin      *kernel.File
	rBin     kernel.Region
	rBinData kernel.Region
	rPrivate kernel.Region
	rScratch kernel.Region
}

// DeployFaaS sets up the runtime image and registers the three functions
// (Parse, Hash, Marshal), in dense or sparse variants.
func DeployFaaS(m *sim.Machine, sparse bool, scale float64, seed uint64) (*FaaSGroup, error) {
	if scale <= 0 {
		scale = 1
	}
	fp := faasFootprint().scaled(scale)
	k := m.Kernel
	g := k.NewGroup("faas", seed)
	fg := &FaaSGroup{M: m, Group: g, fns: make(map[string]*faasFn), scale: scale}

	var err error
	if fg.Infra, err = k.CreateFile("faas/infra", fp.InfraPages); err != nil {
		return nil, err
	}
	if fg.Libs, err = k.CreateFile("faas/libs", fp.LibPages); err != nil {
		return nil, err
	}
	if fg.Input, err = k.CreateFile("faas/input", fp.DatasetPages); err != nil {
		return nil, err
	}
	if fg.RInfra, err = g.Region("infra", kernel.SegInfra, fp.InfraPages); err != nil {
		return nil, err
	}
	if fg.RLibs, err = g.Region("libs", kernel.SegLibs, fp.LibPages); err != nil {
		return nil, err
	}
	if fg.RInput, err = g.Region("input", kernel.SegMmap, fp.DatasetPages); err != nil {
		return nil, err
	}

	behaviors := []FuncBehavior{
		{Name: "parse", ThinkPerLine: 380, OutWriteEvery: 8},
		{Name: "hash", ThinkPerLine: 500, OutWriteEvery: 0},
		{Name: "marshal", ThinkPerLine: 420, OutWriteEvery: 4},
	}
	for _, b := range behaviors {
		b = sparseVariant(b, fp.DatasetPages, sparse)
		fn := &faasFn{behavior: b, lines: b.LinesPerPage}
		if fn.bin, err = k.CreateFile("faas/"+b.Name+"/bin", fp.BinPages+fp.BinDataPages); err != nil {
			return nil, err
		}
		if fn.rBin, err = g.Region(b.Name+"/bin", kernel.SegText, fp.BinPages); err != nil {
			return nil, err
		}
		if fn.rBinData, err = g.Region(b.Name+"/bindata", kernel.SegData, fp.BinDataPages); err != nil {
			return nil, err
		}
		if fn.rPrivate, err = g.Region(b.Name+"/private", kernel.SegHeap, fp.PrivatePages); err != nil {
			return nil, err
		}
		if fn.rScratch, err = g.Region(b.Name+"/scratch", kernel.SegStack, fp.ScratchPages); err != nil {
			return nil, err
		}
		fg.fns[b.Name] = fn
	}

	tmpl, err := k.CreateProcess(g, "faas-template")
	if err != nil {
		return nil, err
	}
	fg.Template = tmpl
	if err := fg.mapAll(tmpl); err != nil {
		return nil, err
	}

	// Iterate functions in their registered order, not map order: the
	// prefault sequence decides which physical frames each file gets, and
	// frame layout must be identical run to run for the experiments'
	// determinism contract.
	files := []*kernel.File{fg.Infra, fg.Libs, fg.Input}
	for _, name := range fg.FunctionNames() {
		files = append(files, fg.fns[name].bin)
	}
	for _, f := range files {
		if err := f.Prefault(); err != nil {
			return nil, err
		}
	}
	return fg, nil
}

// FunctionNames returns the registered function names in a stable order.
func (fg *FaaSGroup) FunctionNames() []string { return []string{"parse", "hash", "marshal"} }

func (fg *FaaSGroup) mapAll(p *kernel.Process) error {
	fp := faasFootprint().scaled(fg.scale)
	if _, err := p.MapFile(fg.RInfra, fg.Infra, 0, permRX, true, "infra"); err != nil {
		return err
	}
	if _, err := p.MapFile(fg.RLibs, fg.Libs, 0, permRX, true, "libs"); err != nil {
		return err
	}
	if _, err := p.MapFile(fg.RInput, fg.Input, 0, permRO, true, "input"); err != nil {
		return err
	}
	// Stable function order for the same reason as the prefault loop in
	// DeployFaaS: mapping order decides fault and frame-allocation order.
	for _, name := range fg.FunctionNames() {
		fn := fg.fns[name]
		if _, err := p.MapFile(fn.rBin, fn.bin, 0, permRX, true, name+"/bin"); err != nil {
			return err
		}
		if _, err := p.MapFile(fn.rBinData, fn.bin, fp.BinPages, permRW, true, name+"/bindata"); err != nil {
			return err
		}
		if _, err := p.MapAnon(fn.rPrivate, permRW, name+"/private"); err != nil {
			return err
		}
		if _, err := p.MapAnon(fn.rScratch, permRW, name+"/scratch"); err != nil {
			return err
		}
	}
	return nil
}

// Env builds the generator environment of one function container.
func (fg *FaaSGroup) Env(name string, p *kernel.Process) (Env, error) {
	fn, ok := fg.fns[name]
	if !ok {
		return Env{}, fmt.Errorf("workloads: unknown function %q", name)
	}
	return Env{
		P:    p,
		RBin: fn.rBin, RLibs: fg.RLibs, RInfra: fg.RInfra, RBinData: fn.rBinData,
		RDataset: fg.RInput, RPrivate: fn.rPrivate, RScratch: fn.rScratch,
		DatasetFile: fg.Input, DatasetPerm: permRO, DatasetPrivate: true,
	}, nil
}

// Spawn forks a function container from the runtime template and
// schedules it. Returns the task and the fork cycles.
func (fg *FaaSGroup) Spawn(name string, coreID int, seed uint64) (*sim.Task, memdefs.Cycles, error) {
	fn, ok := fg.fns[name]
	if !ok {
		return nil, 0, fmt.Errorf("workloads: unknown function %q", name)
	}
	fg.seq++
	c, forkCycles, err := fg.M.Kernel.Fork(fg.Template, fmt.Sprintf("%s-%d", name, fg.seq))
	if err != nil {
		return nil, 0, err
	}
	env, err := fg.Env(name, c)
	if err != nil {
		return nil, 0, err
	}
	bu := NewBringUpEnv(env, seed)
	bu.noMarks = true
	gen := NewChain(bu, newFuncGen(env, fn.behavior, fn.lines, seed))
	task := fg.M.AddTask(coreID, c, gen)
	fg.Tasks = append(fg.Tasks, task)
	return task, forkCycles, nil
}

// SpawnBringUp forks a function container whose generator is the
// `docker start` bring-up sequence; used by the bring-up experiment.
func (fg *FaaSGroup) SpawnBringUp(name string, coreID int, seed uint64) (*sim.Task, memdefs.Cycles, error) {
	fn, ok := fg.fns[name]
	if !ok {
		return nil, 0, fmt.Errorf("workloads: unknown function %q", name)
	}
	_ = fn
	fg.seq++
	c, forkCycles, err := fg.M.Kernel.Fork(fg.Template, fmt.Sprintf("%s-bringup-%d", name, fg.seq))
	if err != nil {
		return nil, 0, err
	}
	env, err := fg.Env(name, c)
	if err != nil {
		return nil, 0, err
	}
	task := fg.M.AddTask(coreID, c, NewBringUpEnv(env, seed))
	fg.Tasks = append(fg.Tasks, task)
	return task, forkCycles, nil
}
