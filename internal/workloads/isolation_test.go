package workloads

import (
	"testing"

	"babelfish/internal/kernel"
	"babelfish/internal/memdefs"
	"babelfish/internal/sim"
)

// TestCCIDIsolation verifies the Section V security scoping: translations
// are shared only within one CCID group. Two different groups map the
// same file (the page cache is shared, as in any Linux system) but must
// never hit each other's TLB entries, even on the same core.
func TestCCIDIsolation(t *testing.T) {
	p := sim.DefaultParams(kernel.ModeBabelFish)
	p.Cores = 1
	p.MemBytes = 256 << 20
	m := sim.New(p)
	k := m.Kernel
	f := k.MustCreateFile("shared-lib", 64)

	mkGroup := func(name string, seed uint64) (*kernel.Process, kernel.Region) {
		g := k.NewGroup(name, seed)
		pr, err := k.CreateProcess(g, name)
		if err != nil {
			t.Fatal(err)
		}
		r := g.MustRegion("lib", kernel.SegLibs, 64)
		pr.MustMapFile(r, f, 0, memdefs.PermRead|memdefs.PermExec|memdefs.PermUser, true, "lib")
		return pr, r
	}
	p1, r1 := mkGroup("tenantA", 1)
	p2, r2 := mkGroup("tenantB", 2)
	if p1.CCID == p2.CCID {
		t.Fatal("two groups share a CCID")
	}

	drive := func(pr *kernel.Process, r kernel.Region) *sim.Task {
		gvas := make([]memdefs.VAddr, r.Pages)
		for i := range gvas {
			gvas[i] = r.PageVA(i)
		}
		return m.AddTask(0, pr, &seqVAGen{proc: pr, gvas: gvas, limit: 5000})
	}
	t1 := drive(p1, r1)
	t2 := drive(p2, r2)
	if err := m.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	_, _ = t1, t2

	ag := m.Aggregate()
	// Same physical frames (page cache shared), but zero cross-process
	// TLB sharing: the only two processes are in different groups.
	if ag.L2SharedD != 0 || ag.L2SharedI != 0 {
		t.Fatalf("cross-CCID TLB sharing detected: D=%d I=%d", ag.L2SharedD, ag.L2SharedI)
	}
	// The page cache itself is shared (one set of frames).
	e1 := p1.Tables.GetEntry(r1.PageVA(0), memdefs.LvlPTE)
	e2 := p2.Tables.GetEntry(r2.PageVA(0), memdefs.LvlPTE)
	if !e1.Present() || !e2.Present() || e1.PPN() != e2.PPN() {
		t.Fatal("page cache not shared across groups")
	}
	// But the page tables are private across groups.
	if p1.Tables.TableAt(r1.PageVA(0), memdefs.LvlPTE) == p2.Tables.TableAt(r2.PageVA(0), memdefs.LvlPTE) {
		t.Fatal("PTE table shared across CCID groups")
	}
}

// seqVAGen is a minimal sequential generator for isolation tests.
type seqVAGen struct {
	proc  *kernel.Process
	gvas  []memdefs.VAddr
	i     int
	limit int
}

func (g *seqVAGen) Next(s *sim.Step) bool {
	if g.i >= g.limit {
		return false
	}
	s.VA = g.proc.ProcVA(g.gvas[g.i%len(g.gvas)])
	s.Write = false
	s.Kind = memdefs.AccessData
	s.Think = 3
	s.Req = sim.ReqNone
	g.i++
	return true
}
