package workloads

import (
	"fmt"
	"sync"

	"babelfish/internal/graph"
	"babelfish/internal/kernel"
	"babelfish/internal/sim"
)

// Compute applications: two containers run the same program over
// different random traversals of a common (scaled) 500MB input.

// GraphChi models PageRank over a memory-mapped graph: it "operates on
// shared vertices, but uses internal buffering for the edges" (Section
// VII-A), so most of its active translations are private edge buffers and
// rank arrays — the paper's lowest BabelFish gain (shared hits 48% I /
// 12% D; little pte_t sharing).
func GraphChi() *AppSpec {
	spec := &AppSpec{
		Name:  "graphchi",
		Class: Compute,
		FP: Footprint{
			InfraPages: 2560, BinPages: 512, BinDataPages: 64, LibPages: 1280,
			DatasetPages: 12288, PrivatePages: 8192,
			// The rank array is a large contiguous anonymous region: with
			// THP enabled it is 2MB-mapped — the paper's (unshareable,
			// rarely-active) THP pte_ts in Figure 9.
			ScratchPages:      2048,
			DatasetChunkPages: 256, PrivateChunkPages: 256,
		},
		DatasetShared:       false,
		SkipDatasetPrefault: true, // shards are loaded lazily as the scan advances
		DatasetPerm:         permRO,
	}
	spec.NewGen = func(d *Deployment, p *kernel.Process, idx int, seed uint64) sim.Generator {
		return newGraphGen(d.Env(p), seed^0xD3D3)
	}
	return spec
}

// graphCache memoizes generated R-MAT graphs: the containers of one
// deployment (and both architectures' runs) traverse the same graph.
var graphCache sync.Map // key graphKey -> *graph.CSR

type graphKey struct {
	scale, ef int
	seed      uint64
}

func sharedGraph(scale, ef int, seed uint64) *graph.CSR {
	key := graphKey{scale, ef, seed}
	if g, ok := graphCache.Load(key); ok {
		return g.(*graph.CSR)
	}
	g, err := graph.RMAT(scale, ef, seed)
	if err != nil {
		panic(err) // parameters are fixed below
	}
	actual, _ := graphCache.LoadOrStore(key, g)
	return actual.(*graph.CSR)
}

// graphEdgeFactor is the R-MAT edges-per-vertex used by the workload.
const graphEdgeFactor = 8

// graphScaleFor picks an R-MAT scale whose CSR layout roughly fills the
// dataset region (bounded to keep generation affordable): a scale-s
// graph needs about (1+edgeFactor)*2^s/1024 pages.
func graphScaleFor(datasetPages int) int {
	scale := 10
	for scale < 20 && (1+graphEdgeFactor)*(1<<(scale+1))/1024 < datasetPages {
		scale++
	}
	return scale
}

type graphGen struct {
	env Env
	rng *RNG

	g      *graph.CSR
	layout graph.Layout
	code   *codeWalker
	vertex int // sequential PageRank scan position
	q      stepQueue
	salt   uint64

	// Shard rotation: GraphChi's "memory caching" unmaps and remaps
	// windows of the graph as the scan advances. Under BabelFish the
	// remapped window relinks the group's still-populated shared tables
	// (no re-faults while a sibling maps it); the baseline re-faults
	// every page — the paper's page-table-dominated GraphChi gain.
	rotateEvery int
	batches     int
	lastChunk   int
}

func newGraphGen(env Env, seed uint64) *graphGen {
	rng := NewRNG(seed)
	scale := graphScaleFor(env.RDataset.Pages)
	// All containers of the deployment share the same graph: derive the
	// graph seed from the group, not the container.
	csr := sharedGraph(scale, graphEdgeFactor, uint64(env.P.CCID)*0x9E37+1)
	return &graphGen{
		env: env, rng: rng,
		g:           csr,
		layout:      graph.NewLayout(csr),
		code:        newCodeWalker(env.P, rng, 0.08, 0.08, env.RBin, env.RLibs, env.RInfra),
		rotateEvery: 40,
		lastChunk:   -1,
	}
}

// rotateShard unmaps and remaps the dataset chunk under the scan position
// so its translations must be re-established (the data itself stays in
// the page cache).
func (g *graphGen) rotateShard(edgePage int) {
	r := g.env.RDataset
	if !r.Chunked() || g.env.DatasetFile == nil {
		return
	}
	chunk := edgePage / r.ChunkPages
	if chunk >= len(r.ChunkStarts) {
		chunk = len(r.ChunkStarts) - 1
	}
	g.lastChunk = chunk
	p := g.env.P
	start := r.ChunkStarts[chunk]
	v, ok := p.FindVMA(start)
	if !ok {
		return
	}
	if _, err := p.Unmap(v); err != nil {
		return
	}
	n := r.ChunkPages
	if (chunk+1)*r.ChunkPages > r.Pages {
		n = r.Pages - chunk*r.ChunkPages
	}
	sub := kernel.Region{Name: v.Name, Seg: r.Seg, Start: start, Pages: n}
	// A failed remap (e.g. injected OOM) leaves the window unmapped; the
	// next access faults and the generator retries via the normal path.
	_, _ = p.MapFile(sub, g.env.DatasetFile, chunk*r.ChunkPages, g.env.DatasetPerm, g.env.DatasetPrivate, fmt.Sprintf("dataset#%d", chunk))
}

// datasetPage clamps a layout page into the mapped dataset region.
func (g *graphGen) datasetPage(page int) int {
	if page >= g.env.RDataset.Pages {
		page %= g.env.RDataset.Pages
	}
	return page
}

// rankPage returns the rank-array page of vertex v (8 bytes per rank).
func (g *graphGen) rankPage(v int) int {
	return (v / 512) % g.env.RScratch.Pages
}

// buildBatch processes one vertex of the PageRank power iteration: read
// its RowPtr page, stream its out-edges from the CSR edge section
// (buffered privately, as GraphChi does), and scatter rank contributions
// to its neighbours' (random, power-law) rank pages.
func (g *graphGen) buildBatch() {
	e, p := &g.env, g.env.P
	g.salt++
	var s sim.Step
	g.code.next(&s)
	s.Req = sim.ReqStart
	g.q.push(s)

	v := g.vertex % g.g.N
	g.vertex++
	g.batches++
	if g.rotateEvery > 0 && g.batches%g.rotateEvery == 0 {
		// Rotate a random shard window (vertex or edge section).
		g.rotateShard(g.rng.Intn(g.env.RDataset.Pages))
	}

	// RowPtr page: sequential over the vertex section.
	dataStep(&s, p, pageAddr(e.RDataset, g.datasetPage(g.layout.VertexPage(v)), g.salt), false, 4)
	g.q.push(s)

	// Stream this vertex's edges from the shared CSR (consecutive pages),
	// copying them through the private shard buffers.
	lo, hi := int(g.g.RowPtr[v]), int(g.g.RowPtr[v+1])
	edges := hi - lo
	if edges > 24 {
		edges = 24 // GraphChi processes big vertices in sub-intervals
	}
	lastPage := -1
	for i := 0; i < edges; i++ {
		pg := g.datasetPage(g.layout.EdgePage(lo + i))
		if pg != lastPage {
			dataStep(&s, p, pageAddr(e.RDataset, pg, g.salt*11+uint64(i)), false, 3)
			g.q.push(s)
			lastPage = pg
		}
		// Buffered copy (private, low locality across shards).
		if i%4 == 0 {
			dataStep(&s, p, pageAddr(e.RPrivate, g.rng.Intn(e.RPrivate.Pages), g.salt*7+uint64(i)), true, 4)
			g.q.push(s)
		}
	}
	// Consume the buffers.
	for i := 0; i < 4; i++ {
		dataStep(&s, p, pageAddr(e.RPrivate, g.rng.Intn(e.RPrivate.Pages), g.salt*3+uint64(i)), false, 4)
		g.q.push(s)
		if i == 1 {
			g.code.next(&s)
			g.q.push(s)
		}
	}
	// Gather/scatter with the real neighbours: read each neighbour's
	// degree from its (random, power-law) RowPtr page, then update its
	// rank in the huge-page-backed rank array.
	scatter := edges
	if scatter > 3 {
		scatter = 3
	}
	for i := 0; i < scatter; i++ {
		w := int(g.g.Dst[lo+(i*7)%max(edges, 1)])
		dataStep(&s, p, pageAddr(e.RDataset, g.datasetPage(g.layout.VertexPage(w)), g.salt*17+uint64(i)), false, 4)
		g.q.push(s)
		dataStep(&s, p, pageAddr(e.RScratch, g.rankPage(w), g.salt*13+uint64(i)), true, 4)
		g.q.push(s)
	}
	g.code.next(&s)
	s.Req = sim.ReqEnd
	g.q.push(s)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (g *graphGen) Next(out *sim.Step) bool {
	if g.q.empty() {
		g.buildBatch()
	}
	return g.q.pop(out)
}

// NextBatch implements sim.BatchGenerator. At most one vertex is built
// per call: buildBatch can rotate a dataset shard (unmap + remap, with
// shootdowns), and building exactly when the previous steps have all been
// consumed keeps those kernel mutations at the same point in machine time
// as step-at-a-time generation.
func (g *graphGen) NextBatch(buf []sim.Step) int {
	if g.q.empty() {
		g.buildBatch()
	}
	return g.q.popN(buf)
}

// MutatesKernel implements sim.KernelMutator: shard rotation unmaps and
// remaps dataset windows, so sharded stepping must serialize this
// generator's refills at the quantum barrier. True only when the dataset
// is actually chunked and file-backed (rotateShard's own precondition).
func (g *graphGen) MutatesKernel() bool {
	return g.rotateEvery > 0 && g.env.RDataset.Chunked() && g.env.DatasetFile != nil
}

// FIO models the flexible I/O tester doing random reads and writes over
// an in-memory MAP_SHARED dataset. Both containers sweep the same
// dataset, so a large fraction of translations brought in by one are
// reused by the other — FIO gets the bigger compute-side improvement in
// the paper.
func FIO() *AppSpec {
	spec := &AppSpec{
		Name:  "fio",
		Class: Compute,
		FP: Footprint{
			InfraPages: 2560, BinPages: 256, BinDataPages: 32, LibPages: 768,
			DatasetPages: 12288, PrivatePages: 128, ScratchPages: 64,
			DatasetChunkPages: 256,
		},
		DatasetShared: true,
		DatasetPerm:   permRW,
	}
	spec.NewGen = func(d *Deployment, p *kernel.Process, idx int, seed uint64) sim.Generator {
		return newFioGen(d.Env(p), seed^0xE4E4)
	}
	return spec
}

type fioGen struct {
	env  Env
	rng  *RNG
	code *codeWalker
	zipf *Zipf
	q    stepQueue
	salt uint64
}

func newFioGen(env Env, seed uint64) *fioGen {
	rng := NewRNG(seed)
	return &fioGen{
		env: env, rng: rng,
		code: newCodeWalker(env.P, rng, 0.08, 0.10, env.RBin, env.RLibs, env.RInfra),
		// Mild skew: FIO touches most of the dataset but I/O benchmarks
		// re-touch hot blocks.
		zipf: NewZipf(rng, env.RDataset.Pages, 0.97),
	}
}

func (g *fioGen) buildOp() {
	e, p := &g.env, g.env.P
	g.salt++
	var s sim.Step
	g.code.next(&s)
	s.Req = sim.ReqStart
	g.q.push(s)

	write := g.rng.Bool(0.30)
	page := g.zipf.Next()
	// A 4KB block op touches several lines of the target page.
	for i := 0; i < 6; i++ {
		dataStep(&s, p, pageAddr(e.RDataset, page, g.salt*17+uint64(i)*5), write, 3)
		g.q.push(s)
	}
	// Copy through the small I/O buffer.
	dataStep(&s, p, pageAddr(e.RPrivate, g.rng.Intn(e.RPrivate.Pages), g.salt), true, 3)
	g.q.push(s)

	g.code.next(&s)
	s.Req = sim.ReqEnd
	g.q.push(s)
}

func (g *fioGen) Next(out *sim.Step) bool {
	if g.q.empty() {
		g.buildOp()
	}
	return g.q.pop(out)
}

// NextBatch implements sim.BatchGenerator.
func (g *fioGen) NextBatch(buf []sim.Step) int {
	n := 0
	for n < len(buf) {
		if g.q.empty() {
			g.buildOp()
		}
		n += g.q.popN(buf[n:])
	}
	return n
}
