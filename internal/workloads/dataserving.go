package workloads

import (
	"babelfish/internal/kernel"
	"babelfish/internal/kvstore"
	"babelfish/internal/sim"
	"babelfish/internal/ycsb"
)

// Data-serving applications (Section VI): each container serves a YCSB-
// driven request stream over a (scaled) 500MB dataset. The two containers
// of an application serve different requests but hit overlapping hot
// pages of the shared dataset, which is what makes their translations
// replicate.

// MongoDB models a document store with a memory-mapped storage engine:
// the dataset is MAP_SHARED and updates write the page cache directly.
// Requests walk a B-tree index, then touch the record page, with a
// little private session state. Address translation pressure is high and
// dominated by the dataset, so most of BabelFish's gain comes from L2 TLB
// entry sharing (Table II: 0.77). Driven by YCSB workload B (read
// mostly, 95/5 read/update).
func MongoDB() *AppSpec {
	spec := &AppSpec{
		Name:  "mongodb",
		Class: DataServing,
		FP: Footprint{
			InfraPages: 2560, BinPages: 640, BinDataPages: 96, LibPages: 1536,
			DatasetPages: 12288, PrivatePages: 768, ScratchPages: 128,
			DatasetChunkPages: 512,
		},
		DatasetShared: true,
		DatasetPerm:   permRW,
	}
	spec.NewGen = func(d *Deployment, p *kernel.Process, idx int, seed uint64) sim.Generator {
		g := &dataServingGen{
			env:         d.Env(p),
			rng:         NewRNG(seed ^ 0xA0A0),
			workload:    ycsb.WorkloadB,
			engine:      engineBTree,
			hotFrac:     0.08,
			privTheta:   0.95,
			indexFrac:   16, // 1/16th of the dataset holds the B-tree
			recordLines: 4,
			privProbes:  2,
			scratchOps:  2,
			codeBursts:  3,
			seed:        seed ^ 0x5151,
		}
		g.init()
		return g
	}
	return spec
}

// ArangoDB models an LSM store (RocksDB engine): SSTs are mapped
// MAP_PRIVATE read-only, and a large private anonymous block cache
// absorbs most accesses; SST pages are touched lazily, so its steady
// state keeps taking minor faults (the paper attributes most of Arango's
// gain to page-table effects, Table II: 0.25). Driven by YCSB workload C
// (read only — updates land in the private memtable, modelled as private
// writes).
func ArangoDB() *AppSpec {
	spec := &AppSpec{
		Name:  "arangodb",
		Class: DataServing,
		FP: Footprint{
			InfraPages: 2560, BinPages: 768, BinDataPages: 96, LibPages: 1536,
			DatasetPages: 12288, PrivatePages: 4096, ScratchPages: 128,
			DatasetChunkPages: 256, PrivateChunkPages: 256,
		},
		DatasetShared:       false,
		SkipDatasetPrefault: true,
		DatasetPerm:         permRO,
	}
	spec.NewGen = func(d *Deployment, p *kernel.Process, idx int, seed uint64) sim.Generator {
		g := &dataServingGen{
			env:         d.Env(p),
			rng:         NewRNG(seed ^ 0xB1B1),
			workload:    ycsb.WorkloadC,
			engine:      engineLSM,
			hotFrac:     0.08,
			dataTheta:   0.75, // LSM reads spread over the SSTs (cold pages keep faulting)
			indexFrac:   24,
			recordLines: 4,
			privProbes:  4, // block cache reads and fills
			privWrites:  2, // memtable writes
			scratchOps:  2,
			codeBursts:  3,
			seed:        seed ^ 0x6262,
		}
		g.init()
		return g
	}
	return spec
}

// HTTPd models a static web server: a read-only docroot, a hot code path,
// and small per-request scratch. It is stream-like, with lower address-
// translation stress than the databases — the paper finds smaller (but
// still real) gains here. Driven by YCSB workload C over the docroot
// (every request reads one file).
func HTTPd() *AppSpec {
	spec := &AppSpec{
		Name:  "httpd",
		Class: DataServing,
		FP: Footprint{
			InfraPages: 2560, BinPages: 384, BinDataPages: 64, LibPages: 1024,
			DatasetPages: 8192, PrivatePages: 256, ScratchPages: 128,
			DatasetChunkPages: 1024,
		},
		DatasetShared: false,
		DatasetPerm:   permRO,
	}
	spec.NewGen = func(d *Deployment, p *kernel.Process, idx int, seed uint64) sim.Generator {
		g := &dataServingGen{
			env:         d.Env(p),
			rng:         NewRNG(seed ^ 0xC2C2),
			workload:    ycsb.WorkloadC,
			engine:      engineBTree, // the docroot's directory metadata tree
			hotFrac:     0.10,
			privTheta:   0.95,
			dataTheta:   0.90,
			indexFrac:   16, // directory/metadata pages
			recordLines: 4,
			privProbes:  1,
			scratchOps:  4,
			codeBursts:  6, // parse-heavy: more instruction work per request
			seed:        seed ^ 0x7373,
		}
		g.init()
		return g
	}
	return spec
}

// dataServingGen turns a YCSB request stream into paged references:
//
//	ReqStart → code bursts interleaved with: an index walk (hot B-tree
//	pages derived from the key), the record page itself (written on
//	updates/RMW against MAP_SHARED datasets), private-state probes,
//	scratch writes → ReqEnd.
//
// engineKind selects the index substrate of a data-serving app.
type engineKind int

const (
	engineBTree engineKind = iota // MongoDB-style B+tree / directory tree
	engineLSM                     // RocksDB-style leveled LSM
)

type dataServingGen struct {
	env Env
	rng *RNG

	workload    ycsb.Workload
	engine      engineKind
	hotFrac     float64
	dataTheta   float64
	privTheta   float64
	indexFrac   int // index region = dataset/indexFrac
	recordLines int
	privProbes  int
	privWrites  int
	scratchOps  int
	codeBursts  int
	seed        uint64

	code     *codeWalker
	reqs     *ycsb.Generator
	zipfPriv *Zipf
	btree    *kvstore.BTree
	lsm      *kvstore.LSM

	recordsPerPage int
	indexPages     int
	dsWritable     bool

	q    stepQueue
	salt uint64
}

func (g *dataServingGen) init() {
	e := &g.env
	if g.hotFrac == 0 {
		g.hotFrac = 0.08
	}
	if g.dataTheta == 0 {
		g.dataTheta = 0.99
	}
	if g.privTheta == 0 {
		g.privTheta = 0.80
	}
	if g.indexFrac == 0 {
		g.indexFrac = 16
	}
	if g.recordLines == 0 {
		g.recordLines = 4
	}
	g.code = newCodeWalker(e.P, g.rng, g.hotFrac, 0.10, e.RBin, e.RLibs, e.RInfra)
	g.indexPages = e.RDataset.Pages / g.indexFrac
	if g.indexPages < 1 {
		g.indexPages = 1
	}
	// Records live in the dataset pages past the index region.
	g.recordsPerPage = 8
	dataPages := e.RDataset.Pages - g.indexPages
	if dataPages < 1 {
		dataPages = 1
	}
	var err error
	g.reqs, err = ycsb.New(ycsb.Config{
		Workload: g.workload,
		Records:  dataPages * g.recordsPerPage,
		Theta:    g.dataTheta,
		MaxScan:  48,
		Seed:     g.seed,
	})
	if err != nil {
		panic(err) // workload mixes are fixed at compile time
	}
	if e.RPrivate.Pages > 0 {
		g.zipfPriv = NewZipf(g.rng, e.RPrivate.Pages, g.privTheta)
	}
	if vma, ok := e.P.FindVMA(e.RDataset.PageVA(0)); ok {
		g.dsWritable = vma.Perm.CanWrite()
	}

	// Build the real index substrate over the keyspace.
	keys := g.reqs.Records() * 2 // headroom for inserts
	switch g.engine {
	case engineBTree:
		// Size the leaves so the whole tree fits the index region.
		keysPerLeaf := keys/(g.indexPages*3/4+1) + 1
		if keysPerLeaf < 8 {
			keysPerLeaf = 8
		}
		bt, err := kvstore.NewBTree(keys, 128, keysPerLeaf)
		if err != nil {
			panic(err)
		}
		g.btree = bt
	case engineLSM:
		l, err := kvstore.NewLSM(keys, g.recordsPerPage*2, 4, 3, 10)
		if err != nil {
			panic(err)
		}
		g.lsm = l
	}
}

// recordPage maps a YCSB key to its dataset page (past the index region).
func (g *dataServingGen) recordPage(key int) int {
	p := g.indexPages + key/g.recordsPerPage
	if p >= g.env.RDataset.Pages {
		p = g.env.RDataset.Pages - 1
	}
	return p
}

// indexWalk yields the index pages a key lookup touches. For the B+tree
// engine it is the real root→leaf path (mapped into the hot index
// region); for the LSM engine it is the bloom/index pages of the lookup,
// with the data pages handled by the record access itself.
func (g *dataServingGen) indexWalk(key int, visit func(page int)) {
	switch g.engine {
	case engineBTree:
		for _, pg := range g.btree.PagePath(key) {
			visit(int(pg) % g.indexPages)
		}
	case engineLSM:
		// 10% of reads hit a recent L0 run.
		var salt uint64
		if g.rng.Bool(0.10) {
			salt = g.rng.Uint64() | 1
		}
		pages := g.lsm.Lookup(key, salt)
		// All but the final data page are index-side structures; map the
		// metadata into the hot index region and let the record access
		// cover the data page.
		for i, pg := range pages {
			if i == len(pages)-1 {
				break
			}
			visit(int(pg) % g.indexPages)
		}
	}
}

// buildRequest enqueues one YCSB request's steps.
func (g *dataServingGen) buildRequest() {
	e, p := &g.env, g.env.P
	g.salt++
	var s sim.Step

	first := true
	emitCode := func() {
		g.code.next(&s)
		if first {
			s.Req = sim.ReqStart
			first = false
		}
		g.q.push(s)
	}

	// probe touches several cache lines of one page (a record or index
	// node spans hundreds of bytes), which keeps the L1 TLB useful and
	// puts realistic line pressure on the cache hierarchy.
	probe := func(r kernel.Region, page int, write bool, lines int, salt uint64) {
		for l := 0; l < lines; l++ {
			dataStep(&s, p, pageAddr(r, page, salt*5+uint64(l)*7), write, 2)
			g.q.push(s)
		}
	}

	emitCode()
	for b := 0; b < g.codeBursts; b++ {
		req := g.reqs.Next()
		// Index walk for the request's key.
		i := 0
		g.indexWalk(req.Key, func(page int) {
			probe(e.RDataset, page, false, 2, g.salt+uint64(i))
			i++
		})
		// The record itself.
		switch req.Op {
		case ycsb.OpRead:
			probe(e.RDataset, g.recordPage(req.Key), false, g.recordLines, g.salt*7)
		case ycsb.OpUpdate, ycsb.OpInsert:
			probe(e.RDataset, g.recordPage(req.Key), g.dsWritable, g.recordLines, g.salt*7)
			if !g.dsWritable {
				// LSM-style stores buffer updates privately (memtable).
				probe(e.RPrivate, g.zipfPriv.Next(), true, 2, g.salt*11)
			}
		case ycsb.OpScan:
			pages := req.ScanLen / g.recordsPerPage
			if pages < 1 {
				pages = 1
			}
			if pages > 6 {
				pages = 6
			}
			start := g.recordPage(req.Key)
			for j := 0; j < pages; j++ {
				probe(e.RDataset, start+j, false, 2, g.salt*13+uint64(j))
			}
		case ycsb.OpReadModifyWrite:
			pg := g.recordPage(req.Key)
			probe(e.RDataset, pg, false, g.recordLines, g.salt*7)
			probe(e.RDataset, pg, g.dsWritable, 2, g.salt*17)
		}
		// Private state (block cache, session heap).
		for j := 0; j < g.privProbes; j++ {
			probe(e.RPrivate, g.zipfPriv.Next(), false, 3, g.salt*3+uint64(j))
		}
		for j := 0; j < g.privWrites; j++ {
			probe(e.RPrivate, g.zipfPriv.Next(), true, 3, g.salt*5+uint64(j))
		}
		emitCode()
	}
	// Scratch (response assembly writes a few lines).
	for j := 0; j < g.scratchOps; j++ {
		probe(e.RScratch, g.rng.Intn(e.RScratch.Pages), true, 3, g.salt+uint64(j))
	}
	g.code.next(&s)
	s.Req = sim.ReqEnd
	g.q.push(s)
}

// Next implements sim.Generator; data-serving containers never finish.
func (g *dataServingGen) Next(out *sim.Step) bool {
	if g.q.empty() {
		g.buildRequest()
	}
	return g.q.pop(out)
}

// NextBatch implements sim.BatchGenerator: whole requests are drained
// into buf in one call instead of one interface dispatch per step.
func (g *dataServingGen) NextBatch(buf []sim.Step) int {
	n := 0
	for n < len(buf) {
		if g.q.empty() {
			g.buildRequest()
		}
		n += g.q.popN(buf[n:])
	}
	return n
}
