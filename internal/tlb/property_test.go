package tlb

import (
	"testing"

	"babelfish/internal/memdefs"
)

// xorshift for the op stream.
type opRNG struct{ s uint64 }

func (r *opRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
func (r *opRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// TestFigure8MatchingProperty drives a TLB with a random stream of
// inserts, lookups and invalidations and asserts, for every Hit, that
// the returned entry legally matches the query under the Figure-8 rules:
//
//   - VPN and CCID match (TagCCID) or VPN and PCID match (TagPCID);
//   - Owned entries matched only by their owner (PCID);
//   - shared entries with ORPC never used by a process whose PC bit is
//     set;
//   - writes never satisfied by CoW or non-writable entries.
//
// It also asserts insert-then-lookup coherence and that invalidation is
// absolute until the next insert.
func TestFigure8MatchingProperty(t *testing.T) {
	for _, mode := range []Mode{TagPCID, TagCCID} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			tb := New(Config{
				Name: "prop", Entries: 64, Ways: 4, Size: memdefs.Page4K,
				Mode: mode, AccessTime: 1, AccessTimeMask: 3,
			})
			rng := opRNG{s: 0xBF15}
			const (
				nVPN  = 40 // small space to force conflicts and evictions
				nProc = 6
				nCCID = 2
			)
			// Per-process PC bit: process i uses bit i.
			bitOf := func(pid memdefs.PID) func(memdefs.VPN) (int, bool) {
				return func(memdefs.VPN) (int, bool) { return int(pid), true }
			}
			invalidated := map[memdefs.VPN]bool{}

			for op := 0; op < 60_000; op++ {
				switch rng.intn(10) {
				case 0, 1, 2, 3: // insert
					pid := memdefs.PID(rng.intn(nProc))
					e := Entry{
						VPN:       memdefs.VPN(rng.intn(nVPN)),
						PPN:       memdefs.PPN(rng.next()%100000 + 1),
						Perm:      memdefs.PermRead | memdefs.PermUser,
						PCID:      memdefs.PCID(pid + 1),
						CCID:      memdefs.CCID(rng.intn(nCCID) + 1),
						BroughtBy: pid,
					}
					if rng.intn(3) == 0 {
						e.Perm |= memdefs.PermWrite
					}
					if rng.intn(4) == 0 {
						e.CoW = true
						e.Perm &^= memdefs.PermWrite
					}
					if mode == TagCCID {
						switch rng.intn(3) {
						case 0:
							e.Owned = true
						case 1:
							e.ORPC = true
							e.PCMask = uint32(rng.next())
						}
					}
					tb.Insert(e)
					delete(invalidated, e.VPN)

				case 4: // invalidate
					vpn := memdefs.VPN(rng.intn(nVPN))
					tb.InvalidateVPN(vpn)
					invalidated[vpn] = true

				default: // lookup
					pid := memdefs.PID(rng.intn(nProc))
					q := Lookup{
						VPN:   memdefs.VPN(rng.intn(nVPN)),
						Write: rng.intn(4) == 0,
						PCID:  memdefs.PCID(pid + 1),
						CCID:  memdefs.CCID(rng.intn(nCCID) + 1),
						PID:   pid,
						PCBit: bitOf(pid),
					}
					res, e, lat := tb.LookupEntry(q)
					if res == Hit {
						if invalidated[q.VPN] {
							t.Fatalf("op %d: hit on invalidated VPN %d", op, q.VPN)
						}
						if e.VPN != q.VPN {
							t.Fatalf("op %d: hit wrong VPN", op)
						}
						if mode == TagPCID {
							if e.PCID != q.PCID && !e.Global {
								t.Fatalf("op %d: PCID mismatch hit", op)
							}
						} else {
							if e.CCID != q.CCID {
								t.Fatalf("op %d: CCID mismatch hit", op)
							}
							if e.Owned && e.PCID != q.PCID {
								t.Fatalf("op %d: owned entry hit by non-owner", op)
							}
							if !e.Owned && e.ORPC && e.PCMask&(1<<uint(pid)) != 0 {
								t.Fatalf("op %d: shared entry used by private-copy holder", op)
							}
						}
						if q.Write && (e.CoW || !e.Perm.CanWrite()) {
							t.Fatalf("op %d: write satisfied by CoW/RO entry", op)
						}
					}
					if res == HitCoWFault && (!e.CoW || !q.Write) {
						t.Fatalf("op %d: spurious CoW fault", op)
					}
					if lat < 1 || lat > 3 {
						t.Fatalf("op %d: latency %d out of range", op, lat)
					}
				}
				if occ := tb.Occupancy(); occ > 64 {
					t.Fatalf("op %d: occupancy %d over capacity", op, occ)
				}
			}
		})
	}
}

// TestInsertThenLookupCoherence: an inserted usable entry is immediately
// visible to a legal query.
func TestInsertThenLookupCoherence(t *testing.T) {
	tb := New(Config{Name: "c", Entries: 16, Ways: 4, Size: memdefs.Page4K,
		Mode: TagCCID, AccessTime: 1})
	for i := 0; i < 1000; i++ {
		e := Entry{
			VPN: memdefs.VPN(i * 13), PPN: memdefs.PPN(i + 1),
			Perm: memdefs.PermRead | memdefs.PermUser,
			PCID: memdefs.PCID(i%5 + 1), CCID: 3, BroughtBy: memdefs.PID(i % 5),
		}
		tb.Insert(e)
		res, got, _ := tb.LookupEntry(Lookup{
			VPN: e.VPN, PCID: e.PCID, CCID: 3, PID: memdefs.PID(i % 5),
		})
		if res != Hit || got.PPN != e.PPN {
			t.Fatalf("insert %d not immediately visible: %v", i, res)
		}
	}
}
