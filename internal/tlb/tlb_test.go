package tlb

import (
	"testing"

	"babelfish/internal/memdefs"
)

func smallTLB(mode Mode) *TLB {
	return New(Config{
		Name: "test", Entries: 8, Ways: 2, Size: memdefs.Page4K, Mode: mode,
		AccessTime: 1, AccessTimeMask: 3,
	})
}

func mkEntry(vpn memdefs.VPN, ppn memdefs.PPN, pcid memdefs.PCID, ccid memdefs.CCID) Entry {
	return Entry{
		VPN: vpn, PPN: ppn, PCID: pcid, CCID: ccid,
		Perm:      memdefs.PermRead | memdefs.PermWrite | memdefs.PermExec | memdefs.PermUser,
		BroughtBy: memdefs.PID(pcid),
	}
}

func TestBaselinePCIDMatch(t *testing.T) {
	tb := smallTLB(TagPCID)
	tb.Insert(mkEntry(0x10, 0x99, 1, 7))
	res, e, _ := tb.LookupEntry(Lookup{VPN: 0x10, PCID: 1, CCID: 7, PID: 1})
	if res != Hit || e.PPN != 0x99 {
		t.Fatalf("same-PCID lookup: %v", res)
	}
	// A different process misses even with the same CCID — the baseline
	// does not share translations.
	res, _, _ = tb.LookupEntry(Lookup{VPN: 0x10, PCID: 2, CCID: 7, PID: 2})
	if res != Miss {
		t.Fatalf("cross-PCID lookup: %v, want miss", res)
	}
}

func TestCCIDSharing(t *testing.T) {
	tb := smallTLB(TagCCID)
	tb.Insert(mkEntry(0x10, 0x99, 1, 7))
	// Another process of the same CCID group hits.
	res, e, _ := tb.LookupEntry(Lookup{VPN: 0x10, PCID: 2, CCID: 7, PID: 2})
	if res != Hit || e.PPN != 0x99 {
		t.Fatalf("same-CCID lookup: %v", res)
	}
	if tb.Stats().SharedHits != 1 {
		t.Fatalf("shared hits = %d, want 1", tb.Stats().SharedHits)
	}
	// A different CCID misses.
	res, _, _ = tb.LookupEntry(Lookup{VPN: 0x10, PCID: 2, CCID: 8, PID: 2})
	if res != Miss {
		t.Fatalf("cross-CCID lookup: %v, want miss", res)
	}
}

func TestOwnedEntryRequiresPCID(t *testing.T) {
	tb := smallTLB(TagCCID)
	e := mkEntry(0x10, 0x99, 1, 7)
	e.Owned = true
	tb.Insert(e)
	if res, _, _ := tb.LookupEntry(Lookup{VPN: 0x10, PCID: 1, CCID: 7, PID: 1}); res != Hit {
		t.Fatalf("owner lookup: %v, want hit", res)
	}
	if res, _, _ := tb.LookupEntry(Lookup{VPN: 0x10, PCID: 2, CCID: 7, PID: 2}); res != Miss {
		t.Fatalf("non-owner lookup: %v, want miss", res)
	}
}

func TestORPCPrivateCopySkip(t *testing.T) {
	tb := smallTLB(TagCCID)
	e := mkEntry(0x10, 0x99, 1, 7)
	e.ORPC = true
	e.PCMask = 1 << 3 // process with bit 3 has a private copy
	tb.Insert(e)

	bitOf := func(bit int, ok bool) func(memdefs.VPN) (int, bool) {
		return func(memdefs.VPN) (int, bool) { return bit, ok }
	}

	// Process with bit 3 set cannot use the shared entry.
	res, _, lat := tb.LookupEntry(Lookup{VPN: 0x10, PCID: 4, CCID: 7, PID: 4, PCBit: bitOf(3, true)})
	if res != Miss {
		t.Fatalf("private-copy holder lookup: %v, want miss", res)
	}
	if lat != 3 {
		t.Fatalf("mask check latency = %d, want 3 (long access)", lat)
	}
	if tb.Stats().PrivateCopySkips != 1 {
		t.Fatalf("skips = %d", tb.Stats().PrivateCopySkips)
	}
	// Process with a different bit still shares.
	res, _, _ = tb.LookupEntry(Lookup{VPN: 0x10, PCID: 5, CCID: 7, PID: 5, PCBit: bitOf(2, true)})
	if res != Hit {
		t.Fatalf("clear-bit lookup: %v, want hit", res)
	}
	// Process with no bit at all shares.
	res, _, _ = tb.LookupEntry(Lookup{VPN: 0x10, PCID: 6, CCID: 7, PID: 6, PCBit: bitOf(0, false)})
	if res != Hit {
		t.Fatalf("no-bit lookup: %v, want hit", res)
	}
}

func TestORPCClearSkipsMaskCheck(t *testing.T) {
	tb := smallTLB(TagCCID)
	e := mkEntry(0x10, 0x99, 1, 7)
	tb.Insert(e) // ORPC clear
	res, _, lat := tb.LookupEntry(Lookup{VPN: 0x10, PCID: 2, CCID: 7, PID: 2,
		PCBit: func(memdefs.VPN) (int, bool) { t.Fatal("PCBit consulted with ORPC clear"); return 0, false }})
	if res != Hit || lat != 1 {
		t.Fatalf("res=%v lat=%d, want hit/1", res, lat)
	}
	if tb.Stats().MaskChecks != 0 {
		t.Fatal("mask check counted with ORPC clear")
	}
}

func TestCoWWriteFault(t *testing.T) {
	tb := smallTLB(TagCCID)
	e := mkEntry(0x10, 0x99, 1, 7)
	e.Perm = memdefs.PermRead | memdefs.PermUser
	e.CoW = true
	tb.Insert(e)
	// Reads hit.
	if res, _, _ := tb.LookupEntry(Lookup{VPN: 0x10, PCID: 2, CCID: 7, PID: 2}); res != Hit {
		t.Fatalf("CoW read: %v, want hit", res)
	}
	// Writes raise a CoW fault (Figure 8, step 6).
	res, _, _ := tb.LookupEntry(Lookup{VPN: 0x10, Write: true, PCID: 2, CCID: 7, PID: 2})
	if res != HitCoWFault {
		t.Fatalf("CoW write: %v, want cow-fault", res)
	}
	if tb.Stats().CoWFaultHits != 1 {
		t.Fatalf("CoW fault hits = %d", tb.Stats().CoWFaultHits)
	}
}

func TestProtFault(t *testing.T) {
	tb := smallTLB(TagPCID)
	e := mkEntry(0x10, 0x99, 1, 7)
	e.Perm = memdefs.PermRead | memdefs.PermUser // no write, no exec
	tb.Insert(e)
	if res, _, _ := tb.LookupEntry(Lookup{VPN: 0x10, Write: true, PCID: 1, PID: 1}); res != HitProtFault {
		t.Fatalf("write to RO: %v, want prot-fault", res)
	}
	if res, _, _ := tb.LookupEntry(Lookup{VPN: 0x10, Exec: true, PCID: 1, PID: 1}); res != HitProtFault {
		t.Fatalf("exec of NX: %v, want prot-fault", res)
	}
}

func TestLRUEviction(t *testing.T) {
	tb := smallTLB(TagPCID) // 4 sets x 2 ways
	// Fill one set (VPNs congruent mod 4) beyond capacity.
	v1, v2, v3 := memdefs.VPN(0x04), memdefs.VPN(0x08), memdefs.VPN(0x0C)
	tb.Insert(mkEntry(v1, 1, 1, 0))
	tb.Insert(mkEntry(v2, 2, 1, 0))
	// Touch v1 so v2 is LRU.
	tb.LookupEntry(Lookup{VPN: v1, PCID: 1, PID: 1})
	tb.Insert(mkEntry(v3, 3, 1, 0))
	if res, _, _ := tb.LookupEntry(Lookup{VPN: v2, PCID: 1, PID: 1}); res != Miss {
		t.Fatal("LRU victim v2 still present")
	}
	if res, _, _ := tb.LookupEntry(Lookup{VPN: v1, PCID: 1, PID: 1}); res != Hit {
		t.Fatal("recently-used v1 evicted")
	}
	if tb.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", tb.Stats().Evictions)
	}
}

func TestInvalidateSharedKeepsOwned(t *testing.T) {
	tb := smallTLB(TagCCID)
	shared := mkEntry(0x10, 0x99, 1, 7)
	owned := mkEntry(0x10, 0xAA, 2, 7)
	owned.Owned = true
	tb.Insert(shared)
	tb.Insert(owned)
	if n := tb.InvalidateSharedVPN(0x10, 7); n != 1 {
		t.Fatalf("invalidated %d, want 1", n)
	}
	// The owned entry survives.
	if res, e, _ := tb.LookupEntry(Lookup{VPN: 0x10, PCID: 2, CCID: 7, PID: 2}); res != Hit || e.PPN != 0xAA {
		t.Fatalf("owned entry gone: %v", res)
	}
	// The shared entry is gone.
	if res, _, _ := tb.LookupEntry(Lookup{VPN: 0x10, PCID: 3, CCID: 7, PID: 3}); res != Miss {
		t.Fatal("shared entry survived invalidation")
	}
}

func TestFlushPCID(t *testing.T) {
	tb := smallTLB(TagCCID)
	tb.Insert(mkEntry(0x10, 1, 1, 7))
	tb.Insert(mkEntry(0x11, 2, 2, 7))
	if n := tb.FlushPCID(1); n != 1 {
		t.Fatalf("flushed %d, want 1", n)
	}
	if res, _, _ := tb.LookupEntry(Lookup{VPN: 0x11, PCID: 2, CCID: 7, PID: 2}); res != Hit {
		t.Fatal("other process's entry flushed")
	}
}

func TestInsertClearsMaskPerORPCLogic(t *testing.T) {
	tb := smallTLB(TagCCID)
	e := mkEntry(0x10, 1, 1, 7)
	e.Owned = true
	e.ORPC = true
	e.PCMask = 0xFF
	tb.Insert(e)
	// Owned entries do not load the mask (Figure 5b).
	tb.ForEachValid(func(e *Entry) {
		if e.VPN == 0x10 && (e.PCMask != 0 || e.MaskLoaded) {
			t.Fatal("mask loaded for owned entry")
		}
	})
	if tb.Stats().MaskLoads != 0 {
		t.Fatal("mask load counted for owned entry")
	}
	e2 := mkEntry(0x11, 1, 1, 7)
	e2.ORPC = true
	e2.PCMask = 0xF0
	tb.Insert(e2)
	if tb.Stats().MaskLoads != 1 {
		t.Fatalf("mask loads = %d, want 1", tb.Stats().MaskLoads)
	}
}

func TestGroupMultiSize(t *testing.T) {
	g := NewGroup(L1DConfig(TagPCID))
	va := memdefs.VAddr(0x40000000 + 5*memdefs.PageSize)
	e2m := Entry{VPN: memdefs.Page2M.VPNOf(va), PPN: 0x4000, PCID: 1,
		Perm: memdefs.PermRead | memdefs.PermUser}
	g.Insert(memdefs.Page2M, e2m)
	res := g.Lookup(va, Lookup{PCID: 1, PID: 1})
	if res.Res != Hit || res.Size != memdefs.Page2M {
		t.Fatalf("2M group lookup: %v size %v", res.Res, res.Size)
	}
	// 4K entry for an overlapping address coexists in its own structure.
	e4k := Entry{VPN: memdefs.Page4K.VPNOf(va), PPN: 0x9000, PCID: 1,
		Perm: memdefs.PermRead | memdefs.PermUser}
	g.Insert(memdefs.Page4K, e4k)
	res = g.Lookup(va, Lookup{PCID: 1, PID: 1})
	if res.Res != Hit || res.Size != memdefs.Page4K {
		t.Fatalf("4K-priority lookup: %v size %v", res.Res, res.Size)
	}
	if n := g.InvalidateVA(va); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
}

func TestTableIGeometries(t *testing.T) {
	// The Table I configurations must construct without panicking and
	// hold the advertised number of entries.
	for _, cfg := range []GroupConfig{
		L1DConfig(TagPCID), L1IConfig(TagCCID), L2Config(TagCCID, false), L2Config(TagPCID, true),
	} {
		g := NewGroup(cfg)
		for _, c := range cfg.Structs {
			tb := g.BydSize[c.Size]
			if tb == nil {
				t.Fatalf("%s missing", c.Name)
			}
		}
	}
	l2 := NewGroup(L2Config(TagCCID, false))
	tb := l2.BydSize[memdefs.Page4K]
	for i := 0; i < 5000; i++ {
		tb.Insert(mkEntry(memdefs.VPN(i)*131, memdefs.PPN(i), 1, 7))
	}
	if occ := tb.Occupancy(); occ > 1536 {
		t.Fatalf("occupancy %d exceeds 1536", occ)
	}
}
