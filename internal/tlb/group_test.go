package tlb

import (
	"testing"

	"babelfish/internal/memdefs"
)

func testGroup() *Group {
	return NewGroup(GroupConfig{Structs: []Config{
		{Name: "4k", Entries: 16, Ways: 4, Size: memdefs.Page4K, Mode: TagCCID, AccessTime: 1, AccessTimeMask: 3},
		{Name: "2m", Entries: 8, Ways: 4, Size: memdefs.Page2M, Mode: TagCCID, AccessTime: 2},
	}})
}

func TestGroupLatencyIsMax(t *testing.T) {
	g := testGroup()
	// A miss probes both structures: latency is the slower one (2).
	res := g.Lookup(0x12345000, Lookup{PCID: 1, CCID: 1, PID: 1})
	if res.Res != Miss || res.Lat != 2 {
		t.Fatalf("miss: res=%v lat=%d", res.Res, res.Lat)
	}
}

func TestGroupCoWOutranksMiss(t *testing.T) {
	g := testGroup()
	va := memdefs.VAddr(0x40000000)
	e := Entry{VPN: memdefs.Page4K.VPNOf(va), PPN: 7, CCID: 1, PCID: 1,
		Perm: memdefs.PermRead | memdefs.PermUser, CoW: true, BroughtBy: 1}
	g.Insert(memdefs.Page4K, e)
	res := g.Lookup(va, Lookup{Write: true, PCID: 2, CCID: 1, PID: 2})
	if res.Res != HitCoWFault {
		t.Fatalf("res = %v, want cow-fault", res.Res)
	}
}

func TestGroupInsertUnknownSizeIsNoop(t *testing.T) {
	g := testGroup()
	g.Insert(memdefs.Page1G, Entry{VPN: 1, PPN: 1}) // no 1G structure
	if n := g.InvalidateVA(1 << 30); n != 0 {
		t.Fatalf("phantom entries: %d", n)
	}
}

func TestGroupSharedInvalidate(t *testing.T) {
	g := testGroup()
	va := memdefs.VAddr(0x40000000)
	shared := Entry{VPN: memdefs.Page4K.VPNOf(va), PPN: 1, CCID: 5, PCID: 1,
		Perm: memdefs.PermRead | memdefs.PermUser, BroughtBy: 1}
	owned := shared
	owned.Owned = true
	owned.PCID = 2
	owned.PPN = 2
	g.Insert(memdefs.Page4K, shared)
	g.Insert(memdefs.Page4K, owned)
	if n := g.InvalidateSharedVA(va, 5); n != 1 {
		t.Fatalf("shared invalidations = %d", n)
	}
	// Owner still hits.
	res := g.Lookup(va, Lookup{PCID: 2, CCID: 5, PID: 2})
	if res.Res != Hit || res.Entry.PPN != 2 {
		t.Fatalf("owned entry lost: %v", res.Res)
	}
}

func TestGroupFlushPCIDAndStats(t *testing.T) {
	g := testGroup()
	va4k := memdefs.VAddr(0x1000)
	va2m := memdefs.VAddr(0x40000000)
	g.Insert(memdefs.Page4K, Entry{VPN: memdefs.Page4K.VPNOf(va4k), PPN: 1, CCID: 1, PCID: 7,
		Perm: memdefs.PermRead | memdefs.PermUser, BroughtBy: 7})
	g.Insert(memdefs.Page2M, Entry{VPN: memdefs.Page2M.VPNOf(va2m), PPN: 2, CCID: 1, PCID: 7,
		Perm: memdefs.PermRead | memdefs.PermUser, BroughtBy: 7})
	g.Lookup(va4k, Lookup{PCID: 7, CCID: 1, PID: 7})
	g.Lookup(va2m, Lookup{PCID: 7, CCID: 1, PID: 7})
	st := g.Stats()
	if st.Fills != 2 || st.Hits != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if n := g.FlushPCID(7); n != 2 {
		t.Fatalf("flushed %d, want 2", n)
	}
	g.ResetStats()
	if g.Stats().Hits != 0 {
		t.Fatal("reset failed")
	}
	g.FlushAll()
	if res := g.Lookup(va4k, Lookup{PCID: 7, CCID: 1, PID: 7}); res.Res != Miss {
		t.Fatal("entries after FlushAll")
	}
}

func TestResultStrings(t *testing.T) {
	for r, want := range map[Result]string{
		Miss: "miss", Hit: "hit", HitCoWFault: "cow-fault", HitProtFault: "prot-fault",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
	if TagPCID.String() != "PCID" || TagCCID.String() != "CCID" {
		t.Error("mode strings wrong")
	}
}

func TestLargerL2Geometry(t *testing.T) {
	g := NewGroup(L2Config(TagPCID, true))
	tb := g.BydSize[memdefs.Page4K]
	if tb.Config().Entries != 2304 || tb.Config().Ways != 18 {
		t.Fatalf("larger L2: %d entries / %d ways", tb.Config().Entries, tb.Config().Ways)
	}
	// It actually holds more than the standard 1536.
	for i := 0; i < 4000; i++ {
		tb.Insert(Entry{VPN: memdefs.VPN(i * 131), PPN: memdefs.PPN(i + 1), PCID: 1,
			Perm: memdefs.PermRead | memdefs.PermUser})
	}
	if occ := tb.Occupancy(); occ <= 1536 || occ > 2304 {
		t.Fatalf("larger L2 occupancy %d", occ)
	}
}
