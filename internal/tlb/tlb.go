// Package tlb models set-associative translation lookaside buffers with
// the BabelFish extensions of Section III-A of the paper:
//
//   - a CCID (Container Context Identifier) tag, so all processes of a
//     container group can hit on the same entry;
//   - the O-PC field: an Ownership (O) bit marking private entries (which
//     then require a PCID match), a 32-bit PrivateCopy (PC) bitmask with
//     one bit per CoW-writing process of the group, and the ORPC bit (the
//     OR of the PC bitmask) that lets most lookups skip the bitmask; and
//   - the Figure-8 lookup algorithm, including the "process already has a
//     private copy" miss and the CoW-write fault.
//
// A TLB runs in one of two tag modes: TagPCID reproduces a conventional
// per-process TLB (the baseline, and BabelFish's L1 under ASLR-HW, which
// does not share entries); TagCCID implements BabelFish sharing.
package tlb

import (
	"fmt"

	"babelfish/internal/memdefs"
)

// Mode selects the tagging discipline.
type Mode int

const (
	// TagPCID: conventional TLB; hits require VPN+PCID match.
	TagPCID Mode = iota
	// TagCCID: BabelFish TLB; hits require VPN+CCID match plus the O-PC
	// checks of Figure 8.
	TagCCID
)

func (m Mode) String() string {
	if m == TagCCID {
		return "CCID"
	}
	return "PCID"
}

// Entry is one TLB entry (Figure 3 of the paper).
type Entry struct {
	Valid bool
	VPN   memdefs.VPN
	PPN   memdefs.PPN
	Perm  memdefs.Perm
	CoW   bool // software CoW page: writes must fault
	PCID  memdefs.PCID
	CCID  memdefs.CCID

	// O-PC field (Figure 4).
	Owned      bool   // O bit: private entry, PCID must match
	ORPC       bool   // OR of the PC bitmask
	PCMask     uint32 // PrivateCopy bitmask (loaded only when needed)
	MaskLoaded bool

	// BroughtBy records which process filled the entry, for the paper's
	// "shared hits" accounting (Figure 10b).
	BroughtBy memdefs.PID

	Global bool // kernel-style global mapping (ignores PCID), unused by default

	lru uint64
}

// Result classifies a lookup outcome.
type Result int

const (
	// Miss: no usable entry; walk the page tables.
	Miss Result = iota
	// Hit: translation produced.
	Hit
	// HitCoWFault: a matching shared entry was found but the access is a
	// write to a CoW page; a CoW page fault must be taken (Figure 8, step 6).
	HitCoWFault
	// HitProtFault: matching entry but the permission check fails
	// (e.g. write to a read-only, non-CoW page, or exec of NX page).
	HitProtFault
)

func (r Result) String() string {
	switch r {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case HitCoWFault:
		return "cow-fault"
	case HitProtFault:
		return "prot-fault"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// Lookup carries one probe's arguments.
type Lookup struct {
	VPN   memdefs.VPN
	Write bool
	Exec  bool
	PCID  memdefs.PCID
	CCID  memdefs.CCID
	PID   memdefs.PID
	// PCBit resolves the probing process's bit index in the PC bitmask
	// for this VPN's region (from the MaskPage pid_list). It is consulted
	// only when an entry has O==0 and ORPC==1. May be nil (no bit).
	PCBit func(memdefs.VPN) (int, bool)
}

// Stats holds per-TLB counters.
type Stats struct {
	Accesses         uint64
	Hits             uint64
	Misses           uint64
	SharedHits       uint64 // hits on entries brought in by another process
	MaskChecks       uint64 // lookups that had to read the PC bitmask
	PrivateCopySkips uint64 // matching shared entries unusable: process has private copy
	CoWFaultHits     uint64
	ProtFaultHits    uint64
	Fills            uint64
	MaskLoads        uint64 // fills that loaded the PC bitmask
	Invalidations    uint64
	Evictions        uint64
}

// Config describes one TLB structure.
type Config struct {
	Name    string
	Entries int
	Ways    int // 0 = fully associative
	Size    memdefs.PageSizeClass
	Mode    Mode
	// AccessTime is the fast access; AccessTimeMask applies when the PC
	// bitmask must be read (the L2 TLB's 10 vs 12 cycles in Table I).
	AccessTime     memdefs.Cycles
	AccessTimeMask memdefs.Cycles
}

// tagValid marks a live way in the packed tag-word array. VPNs are page
// numbers of at most 52-bit virtual addresses, so the top bit is free.
const tagValid = 1 << 63

// TLB is one set-associative TLB structure for a single page-size class.
//
// Ways are stored flat (entries[set*ways+way]), fronted by a packed
// tag-word array holding VPN|valid per way: the way scan — the hottest
// loop in the simulator — touches one contiguous word per way and only
// dereferences the full Entry for VPN-matching ways.
type TLB struct {
	cfg     Config
	tagw    []uint64
	entries []Entry
	ways    int
	numSets int
	tick    uint64
	stats   Stats

	// gens holds one generation counter per set, bumped whenever the
	// set's *contents* change (an insert, or an invalidation that removed
	// at least one entry). LRU timestamps are deliberately excluded: they
	// never change a lookup's outcome, and the next content change goes
	// through Insert, which bumps the generation itself. A translation
	// result cached outside the TLB (internal/xcache) is therefore valid
	// exactly as long as the generations of every set it probed are
	// unchanged.
	gens []uint64
}

// New builds a TLB. Fully-associative structures use Ways == 0 or
// Ways == Entries.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 {
		panic("tlb: no entries: " + cfg.Name)
	}
	ways := cfg.Ways
	if ways <= 0 || ways > cfg.Entries {
		ways = cfg.Entries
	}
	numSets := cfg.Entries / ways
	if numSets == 0 {
		numSets = 1
	}
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("tlb %s: sets %d not a power of two", cfg.Name, numSets))
	}
	if cfg.AccessTimeMask == 0 {
		cfg.AccessTimeMask = cfg.AccessTime
	}
	t := &TLB{cfg: cfg, numSets: numSets, ways: ways}
	t.tagw = make([]uint64, numSets*ways)
	t.entries = make([]Entry, numSets*ways)
	t.gens = make([]uint64, numSets)
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// base returns the flat index of the first way of vpn's set.
func (t *TLB) base(vpn memdefs.VPN) int {
	return (int(vpn) & (t.numSets - 1)) * t.ways
}

// SetGen returns a pointer to the generation counter of vpn's set plus
// its current value. A caller caching a lookup result snapshots the pair
// for every set the lookup probed; the cached result is provably still
// what the modeled lookup would produce while *ptr == val (the set's
// contents have not changed).
func (t *TLB) SetGen(vpn memdefs.VPN) (*uint64, uint64) {
	g := &t.gens[int(vpn)&(t.numSets-1)]
	return g, *g
}

// ReplayMiss applies exactly the state changes a modeled LookupEntry
// miss performs: the access and miss counters and the LRU tick. Used by
// the translation-result cache to keep stats and LRU state byte-identical
// to the modeled path when a cached result short-circuits the lookup.
func (t *TLB) ReplayMiss() {
	t.stats.Accesses++
	t.tick++
	t.stats.Misses++
}

// ReplayHit applies exactly the state changes a modeled LookupEntry hit
// on e performs (the plain-hit path: no mask check, no CoW/prot fault).
// shared tells whether the modeled path counted a shared hit
// (e.BroughtBy != probing PID at fill time — invariant while the set
// generation is unchanged, since BroughtBy is only written by Insert).
func (t *TLB) ReplayHit(e *Entry, shared bool) {
	t.stats.Accesses++
	t.tick++
	t.stats.Hits++
	if shared {
		t.stats.SharedHits++
	}
	e.lru = t.tick
}

// GateSig is the cacheability signature: the sum of the counters that
// fire when a lookup's outcome depended on state outside the set-content
// generations (PC-bitmask reads against kernel MaskPage state, private
// -copy skips, CoW/prot fault classifications). A lookup is safe to
// cache only if the signature did not move across it.
func (t *TLB) GateSig() uint64 {
	s := &t.stats
	return s.MaskChecks + s.PrivateCopySkips + s.CoWFaultHits + s.ProtFaultHits
}

// permOK checks the access against entry permissions, ignoring the CoW
// special case (handled separately).
func permOK(e *Entry, q *Lookup) bool {
	if q.Exec && !e.Perm.CanExec() {
		return false
	}
	if q.Write && !e.Perm.CanWrite() && !e.CoW {
		return false
	}
	return true
}

// LookupEntry implements the Figure-8 algorithm and returns the matched
// entry (for Hit results), the latency, and the outcome.
//
// The way scan is the hottest loop in the simulator (every memory access
// probes up to three structures), so the tag mode — fixed per TLB — is
// resolved once outside the loop, and each way is rejected on the VPN
// compare before any mode logic runs.
func (t *TLB) LookupEntry(q Lookup) (Result, *Entry, memdefs.Cycles) {
	return t.lookupEntry(&q)
}

// lookupEntry is LookupEntry without the per-call Lookup copy; the group
// probe loop passes its single mutable Lookup by pointer across up to
// three size classes.
func (t *TLB) lookupEntry(q *Lookup) (Result, *Entry, memdefs.Cycles) {
	t.stats.Accesses++
	t.tick++
	lat := t.cfg.AccessTime
	vpn := q.VPN
	base := t.base(vpn)
	tags := t.tagw[base : base+t.ways]
	want := uint64(vpn) | tagValid

	if t.cfg.Mode == TagPCID {
		pcid := q.PCID
		for i, w := range tags {
			if w != want {
				continue
			}
			e := &t.entries[base+i]
			if !e.Global && e.PCID != pcid {
				continue
			}
			return t.finishHit(e, q, lat)
		}
		t.stats.Misses++
		return Miss, nil, lat
	}

	ccid := q.CCID
	for i, w := range tags {
		if w != want {
			continue
		}
		e := &t.entries[base+i]
		// TagCCID: VPN and CCID must match (step 1).
		if e.CCID != ccid {
			continue
		}
		if e.Owned {
			// Private entry: PCID must also match (steps 2, 9).
			if e.PCID != q.PCID {
				continue
			}
			return t.finishHit(e, q, lat)
		}
		// Shared entry. If ORPC is set, the process must check its own
		// bit in the PC bitmask (step 3); the check costs the long
		// access time.
		if e.ORPC {
			t.stats.MaskChecks++
			lat = t.cfg.AccessTimeMask
			if q.PCBit != nil {
				if bit, ok := q.PCBit(vpn); ok && bit < memdefs.PCBitmaskBits && e.PCMask&(1<<uint(bit)) != 0 {
					// The process has its own private copy of this page;
					// it cannot use the shared translation (step 10).
					t.stats.PrivateCopySkips++
					continue
				}
			}
		}
		// Step 5/6: write to a CoW page → CoW page fault.
		if q.Write && e.CoW {
			t.stats.CoWFaultHits++
			return HitCoWFault, e, lat
		}
		return t.finishHit(e, q, lat)
	}
	t.stats.Misses++
	return Miss, nil, lat
}

func (t *TLB) finishHit(e *Entry, q *Lookup, lat memdefs.Cycles) (Result, *Entry, memdefs.Cycles) {
	if q.Write && e.CoW {
		t.stats.CoWFaultHits++
		return HitCoWFault, e, lat
	}
	if !permOK(e, q) {
		t.stats.ProtFaultHits++
		return HitProtFault, e, lat
	}
	t.stats.Hits++
	if e.BroughtBy != q.PID {
		t.stats.SharedHits++
	}
	e.lru = t.tick
	return Hit, e, lat
}

// Insert fills an entry, evicting the LRU way of its set. Loading the PC
// bitmask (shared entry with ORPC set) is counted; per the ORPC logic of
// Figure 5(b), the mask is not loaded — and its storage cleared — when O
// is set or ORPC is clear.
func (t *TLB) Insert(e Entry) {
	t.stats.Fills++
	t.tick++
	e.Valid = true
	e.lru = t.tick
	if e.Owned || !e.ORPC {
		e.PCMask = 0
		e.MaskLoaded = false
	} else {
		e.MaskLoaded = true
		t.stats.MaskLoads++
	}
	si := int(e.VPN) & (t.numSets - 1)
	t.gens[si]++
	base := si * t.ways
	tags := t.tagw[base : base+t.ways]
	victim := 0
	bestLRU := ^uint64(0)
	for i := range tags {
		if tags[i]&tagValid == 0 {
			victim = i
			break
		}
		if l := t.entries[base+i].lru; l < bestLRU {
			bestLRU = l
			victim = i
		}
	}
	if tags[victim]&tagValid != 0 {
		t.stats.Evictions++
	}
	t.entries[base+victim] = e
	tags[victim] = uint64(e.VPN) | tagValid
}

// InvalidateVPN removes every entry for vpn regardless of tags (a full
// shootdown). Returns the number removed.
func (t *TLB) InvalidateVPN(vpn memdefs.VPN) int {
	n := 0
	base := t.base(vpn)
	want := uint64(vpn) | tagValid
	for i := base; i < base+t.ways; i++ {
		if t.tagw[i] == want {
			t.tagw[i] = 0
			t.entries[i].Valid = false
			n++
		}
	}
	if n > 0 {
		t.gens[int(vpn)&(t.numSets-1)]++
	}
	t.stats.Invalidations += uint64(n)
	return n
}

// InvalidateSharedVPN removes only the shared (O==0) entry for vpn in the
// given CCID group — the paper's CoW invalidation, which leaves up to 511
// sibling translations and all private (O==1) entries untouched.
func (t *TLB) InvalidateSharedVPN(vpn memdefs.VPN, ccid memdefs.CCID) int {
	n := 0
	base := t.base(vpn)
	want := uint64(vpn) | tagValid
	for i := base; i < base+t.ways; i++ {
		e := &t.entries[i]
		if t.tagw[i] == want && !e.Owned && (t.cfg.Mode == TagPCID || e.CCID == ccid) {
			t.tagw[i] = 0
			e.Valid = false
			n++
		}
	}
	if n > 0 {
		t.gens[int(vpn)&(t.numSets-1)]++
	}
	t.stats.Invalidations += uint64(n)
	return n
}

// InvalidatePCIDVPN removes entries for vpn belonging to one PCID (the
// baseline's per-process invalidation).
func (t *TLB) InvalidatePCIDVPN(vpn memdefs.VPN, pcid memdefs.PCID) int {
	n := 0
	base := t.base(vpn)
	want := uint64(vpn) | tagValid
	for i := base; i < base+t.ways; i++ {
		if t.tagw[i] == want && t.entries[i].PCID == pcid {
			t.tagw[i] = 0
			t.entries[i].Valid = false
			n++
		}
	}
	if n > 0 {
		t.gens[int(vpn)&(t.numSets-1)]++
	}
	t.stats.Invalidations += uint64(n)
	return n
}

// FlushPCID invalidates every entry installed by one process — used to
// model the fork-time shootdown round that revokes write permission on
// CoW pages. Shared (O==0) BabelFish entries are dropped too when they
// were brought in by that PCID; other sharers simply refill.
func (t *TLB) FlushPCID(pcid memdefs.PCID) int {
	n := 0
	for s := 0; s < t.numSets; s++ {
		removed := false
		for i := s * t.ways; i < (s+1)*t.ways; i++ {
			if t.tagw[i]&tagValid != 0 && t.entries[i].PCID == pcid {
				t.tagw[i] = 0
				t.entries[i].Valid = false
				removed = true
				n++
			}
		}
		if removed {
			t.gens[s]++
		}
	}
	t.stats.Invalidations += uint64(n)
	return n
}

// FlushAll invalidates the whole TLB.
func (t *TLB) FlushAll() {
	clear(t.tagw)
	for i := range t.entries {
		t.entries[i].Valid = false
	}
	for s := range t.gens {
		t.gens[s]++
	}
}

// ForEachValid calls fn for every valid entry (diagnostics/audits). The
// pointer is valid only for the duration of the call.
func (t *TLB) ForEachValid(fn func(*Entry)) {
	for i := range t.entries {
		if t.tagw[i]&tagValid != 0 {
			fn(&t.entries[i])
		}
	}
}

// Occupancy returns the number of valid entries (diagnostics/tests).
func (t *TLB) Occupancy() int {
	n := 0
	for _, w := range t.tagw {
		if w&tagValid != 0 {
			n++
		}
	}
	return n
}
