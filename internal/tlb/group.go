package tlb

import (
	"babelfish/internal/memdefs"
	"babelfish/internal/memsys"
	"babelfish/internal/telemetry"
)

// Group bundles the per-page-size TLB structures of one level (the paper's
// L1 D-TLB has separate 4KB/2MB/1GB arrays; the L2 TLB likewise). A probe
// consults all size classes in parallel; the latency is the maximum of the
// structures consulted (they are accessed concurrently in hardware).
type Group struct {
	BydSize [memdefs.NumPageSizes]*TLB // nil for absent classes
	name    string
}

// GroupConfig lists the structures of a group; absent classes stay nil.
// Name identifies the group as a memsys.Device ("tlb.l1d", "tlb.l2", ...).
type GroupConfig struct {
	Name    string
	Structs []Config
}

// NewGroup builds the group.
func NewGroup(cfg GroupConfig) *Group {
	g := &Group{name: cfg.Name}
	if g.name == "" {
		g.name = "tlb"
	}
	for _, c := range cfg.Structs {
		g.BydSize[c.Size] = New(c)
	}
	return g
}

// GroupResult reports a group probe.
type GroupResult struct {
	Res   Result
	Entry *Entry
	Size  memdefs.PageSizeClass
	Lat   memdefs.Cycles
}

// Lookup probes every size class with the size-appropriate VPN of va.
// A Hit in any class wins; otherwise a CoW/prot fault outranks a miss.
func (g *Group) Lookup(va memdefs.VAddr, q Lookup) GroupResult {
	out := GroupResult{Res: Miss}
	for sz := memdefs.Page4K; sz < memdefs.NumPageSizes; sz++ {
		t := g.BydSize[sz]
		if t == nil {
			continue
		}
		// q is already this call's private copy, so patch the VPN in
		// place and pass it by pointer rather than copying the whole
		// Lookup per size class.
		q.VPN = sz.VPNOf(va)
		res, e, lat := t.lookupEntry(&q)
		if lat > out.Lat {
			out.Lat = lat
		}
		switch res {
		case Hit:
			out.Res, out.Entry, out.Size = Hit, e, sz
			return out
		case HitCoWFault, HitProtFault:
			if out.Res == Miss {
				out.Res, out.Entry, out.Size = res, e, sz
			}
		}
	}
	return out
}

// Insert fills the structure of the entry's size class (no-op if the group
// lacks that class).
func (g *Group) Insert(sz memdefs.PageSizeClass, e Entry) {
	if t := g.BydSize[sz]; t != nil {
		t.Insert(e)
	}
}

// InvalidateVA removes all entries covering va in every size class.
func (g *Group) InvalidateVA(va memdefs.VAddr) int {
	n := 0
	for sz := memdefs.Page4K; sz < memdefs.NumPageSizes; sz++ {
		if t := g.BydSize[sz]; t != nil {
			n += t.InvalidateVPN(sz.VPNOf(va))
		}
	}
	return n
}

// InvalidateSharedVA removes only shared (O==0) entries covering va for a
// CCID group.
func (g *Group) InvalidateSharedVA(va memdefs.VAddr, ccid memdefs.CCID) int {
	n := 0
	for sz := memdefs.Page4K; sz < memdefs.NumPageSizes; sz++ {
		if t := g.BydSize[sz]; t != nil {
			n += t.InvalidateSharedVPN(sz.VPNOf(va), ccid)
		}
	}
	return n
}

// FlushPCID invalidates one process's entries in every structure.
func (g *Group) FlushPCID(pcid memdefs.PCID) int {
	n := 0
	for _, t := range g.BydSize {
		if t != nil {
			n += t.FlushPCID(pcid)
		}
	}
	return n
}

// FlushAll empties every structure.
func (g *Group) FlushAll() {
	for _, t := range g.BydSize {
		if t != nil {
			t.FlushAll()
		}
	}
}

// ForEachValid calls fn for every valid entry in every size class, with
// the entry's size class. Used by the kernel TLB-consistency audit.
func (g *Group) ForEachValid(fn func(memdefs.PageSizeClass, *Entry)) {
	for sz := memdefs.Page4K; sz < memdefs.NumPageSizes; sz++ {
		t := g.BydSize[sz]
		if t == nil {
			continue
		}
		t.ForEachValid(func(e *Entry) { fn(sz, e) })
	}
}

// Stats sums the counters across size classes.
func (g *Group) Stats() Stats {
	var s Stats
	for _, t := range g.BydSize {
		if t == nil {
			continue
		}
		ts := t.Stats()
		s.Accesses += ts.Accesses
		s.Hits += ts.Hits
		s.Misses += ts.Misses
		s.SharedHits += ts.SharedHits
		s.MaskChecks += ts.MaskChecks
		s.PrivateCopySkips += ts.PrivateCopySkips
		s.CoWFaultHits += ts.CoWFaultHits
		s.ProtFaultHits += ts.ProtFaultHits
		s.Fills += ts.Fills
		s.MaskLoads += ts.MaskLoads
		s.Invalidations += ts.Invalidations
		s.Evictions += ts.Evictions
	}
	return s
}

// GateSig sums the cacheability signature (see TLB.GateSig) across the
// group's structures. A group lookup whose signature did not move is a
// pure function of the probed sets' contents, so a translation-result
// cache may capture it under the sets' generation counters.
func (g *Group) GateSig() uint64 {
	var sig uint64
	for _, t := range g.BydSize {
		if t != nil {
			sig += t.GateSig()
		}
	}
	return sig
}

// ResetStats zeroes every structure's counters.
func (g *Group) ResetStats() {
	for _, t := range g.BydSize {
		if t != nil {
			t.ResetStats()
		}
	}
}

// Name returns the configured device name ("tlb.l1d", "tlb.l2", ...).
func (g *Group) Name() string { return g.name }

// DeviceStats implements memsys.Device: the summed counters as named
// stats. The first eight match the metric names the simulator has always
// exported for the L2 group; the rest are additive.
func (g *Group) DeviceStats() memsys.Stats {
	s := g.Stats()
	return memsys.Stats{
		{Name: "accesses", Unit: "probe", Help: "TLB probes", Value: s.Accesses},
		{Name: "hits", Unit: "hit", Help: "TLB structure hits", Value: s.Hits},
		{Name: "misses", Unit: "miss", Help: "TLB structure misses", Value: s.Misses},
		{Name: "shared_hits", Unit: "hit", Help: "hits on entries brought in by another process", Value: s.SharedHits},
		{Name: "mask_checks", Unit: "check", Help: "Figure-8 PC-bitmask reads", Value: s.MaskChecks},
		{Name: "fills", Unit: "fill", Help: "entries installed", Value: s.Fills},
		{Name: "evictions", Unit: "evict", Help: "entries evicted", Value: s.Evictions},
		{Name: "invalidations", Unit: "inv", Help: "entries invalidated by shootdowns", Value: s.Invalidations},
		{Name: "private_copy_skips", Unit: "skip", Help: "shared hits rejected by a set PC bit", Value: s.PrivateCopySkips},
		{Name: "cow_fault_hits", Unit: "hit", Help: "hits that raised a CoW fault", Value: s.CoWFaultHits},
		{Name: "prot_fault_hits", Unit: "hit", Help: "hits that raised a protection fault", Value: s.ProtFaultHits},
		{Name: "mask_loads", Unit: "load", Help: "PC-bitmask fetches from memory", Value: s.MaskLoads},
	}
}

// Register installs the group's stats under its configured name.
func (g *Group) Register(reg *telemetry.Registry) { memsys.RegisterDevice(reg, g.name, g) }

var _ memsys.Device = (*Group)(nil)

// Table I group configurations. mode is TagPCID for the baseline (and for
// BabelFish's L1 under ASLR-HW) and TagCCID for BabelFish structures.

// L1DConfig returns the per-core L1 data-TLB group.
func L1DConfig(mode Mode) GroupConfig {
	return GroupConfig{Name: "tlb.l1d", Structs: []Config{
		{Name: "L1D-4K", Entries: 64, Ways: 4, Size: memdefs.Page4K, Mode: mode, AccessTime: 1},
		{Name: "L1D-2M", Entries: 32, Ways: 4, Size: memdefs.Page2M, Mode: mode, AccessTime: 1},
		{Name: "L1D-1G", Entries: 4, Ways: 0, Size: memdefs.Page1G, Mode: mode, AccessTime: 1},
	}}
}

// L1IConfig returns the per-core L1 instruction-TLB group.
func L1IConfig(mode Mode) GroupConfig {
	return GroupConfig{Name: "tlb.l1i", Structs: []Config{
		{Name: "L1I-4K", Entries: 64, Ways: 4, Size: memdefs.Page4K, Mode: mode, AccessTime: 1},
	}}
}

// L2Config returns the per-core unified L2 TLB group. When larger is true,
// the 4KB/2MB structures are grown by 50% (1536 → 2304 entries, 12 → 18
// ways), modelling the §VII-C comparison that spends BabelFish's extra tag
// bits (CCID + O-PC ≈ 46 bits/entry) on conventional capacity instead.
func L2Config(mode Mode, larger bool) GroupConfig {
	at, atMask := memdefs.Cycles(10), memdefs.Cycles(12)
	entries, ways := 1536, 12
	if larger {
		entries, ways = 2304, 18
	}
	return GroupConfig{Name: "tlb.l2", Structs: []Config{
		{Name: "L2-4K", Entries: entries, Ways: ways, Size: memdefs.Page4K, Mode: mode, AccessTime: at, AccessTimeMask: atMask},
		{Name: "L2-2M", Entries: entries, Ways: ways, Size: memdefs.Page2M, Mode: mode, AccessTime: at, AccessTimeMask: atMask},
		{Name: "L2-1G", Entries: 16, Ways: 4, Size: memdefs.Page1G, Mode: mode, AccessTime: at, AccessTimeMask: atMask},
	}}
}
