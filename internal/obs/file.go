package obs

import (
	"os"
	"strings"
)

// WriteTraceFile exports streams to path, picking the format from the
// extension: .jsonl gets the compact JSONL form, anything else the
// Chrome trace-event JSON that Perfetto and chrome://tracing load.
func WriteTraceFile(path, tool string, streams []Stream) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = WriteJSONL(f, tool, streams)
	} else {
		err = WriteChrome(f, tool, streams)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
