package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"babelfish/internal/trace"
)

func TestIDsDeterministicAndNonZero(t *testing.T) {
	a := NewRecorder(42, 3, 16)
	b := NewRecorder(42, 3, 16)
	for i := 0; i < 1000; i++ {
		ia, ib := a.NewID(), b.NewID()
		if ia != ib {
			t.Fatalf("id %d diverged: %x vs %x", i, ia, ib)
		}
		if ia == 0 {
			t.Fatalf("id %d is zero", i)
		}
	}
	// Different scope or seed must produce a different stream.
	c := NewRecorder(42, 4, 16)
	d := NewRecorder(43, 3, 16)
	if a2, c2 := NewRecorder(42, 3, 16).NewID(), c.NewID(); a2 == c2 {
		t.Fatal("scope does not affect IDs")
	}
	if a2, d2 := NewRecorder(42, 3, 16).NewID(), d.NewID(); a2 == d2 {
		t.Fatal("seed does not affect IDs")
	}
}

func TestRecorderRingBounds(t *testing.T) {
	r := NewRecorder(1, 0, 4)
	for i := 0; i < 10; i++ {
		r.Record(Span{Kind: KQuantum, Name: "q", Start: uint64(i), Node: -1, Core: -1, Task: -1, PID: -1})
	}
	if r.Len() != 4 || r.Total() != 10 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	spans := r.Spans()
	for i, s := range spans {
		if s.Start != uint64(6+i) {
			t.Fatalf("span %d start=%d, want %d (oldest-first retained window)", i, s.Start, 6+i)
		}
	}
	if _, ok := r.Find(func(s Span) bool { return s.Start == 9 }); !ok {
		t.Fatal("Find missed the newest span")
	}
	if _, ok := r.Find(func(s Span) bool { return s.Start == 0 }); ok {
		t.Fatal("Find returned an evicted span")
	}
}

func TestRecordAssignsID(t *testing.T) {
	r := NewRecorder(7, 7, 8)
	id := r.Record(Span{Kind: KEvent, Name: "crash"})
	if id == 0 {
		t.Fatal("Record minted a zero ID")
	}
	pre := r.NewID()
	id2 := r.Record(Span{ID: pre, Kind: KEvent, Name: "queued", Parent: id})
	if id2 != pre {
		t.Fatalf("Record replaced a pre-minted ID: %x vs %x", id2, pre)
	}
}

func TestAncestry(t *testing.T) {
	r := NewRecorder(42, ControlScope, 32)
	crash := r.Record(Span{Kind: KEvent, Name: "crash"})
	condemn := r.Record(Span{Kind: KEvent, Name: "condemn", Parent: crash})
	queued := r.Record(Span{Kind: KEvent, Name: "queued", Parent: condemn})
	lost := r.Record(Span{Kind: KViolation, Name: "lost", Parent: queued})
	chain := Ancestry(r.Spans(), lost)
	var names []string
	for _, s := range chain {
		names = append(names, s.Name)
	}
	if got := strings.Join(names, "<"); got != "lost<queued<condemn<crash" {
		t.Fatalf("ancestry chain = %s", got)
	}
	// A missing parent truncates the chain instead of failing.
	if c := Ancestry(r.Spans()[1:], lost); len(c) != 3 {
		t.Fatalf("truncated chain length = %d, want 3", len(c))
	}
}

func TestKindStrings(t *testing.T) {
	for k := 0; k < NumKinds(); k++ {
		if s := Kind(k).String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind(%d) has no name", k)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind fallback wrong")
	}
}

// sampleStreams builds a two-stream export exercising every encoding
// path: spans with and without parents/durations, machine trace events
// and fleet-level trace events.
func sampleStreams(t *testing.T) []Stream {
	t.Helper()
	ctl := NewRecorder(42, ControlScope, 64)
	crash := ctl.Record(Span{Kind: KEvent, Name: "crash", Node: 2, Core: -1, Task: -1, PID: -1, Start: 3})
	ctl.Record(Span{Kind: KRequest, Name: "container 5", Node: -1, Core: -1, Task: 5, PID: -1, Start: 0, Dur: 8, Detail: "x"})
	ctl.Record(Span{Kind: KEvent, Name: "queued", Parent: crash, Node: -1, Core: -1, Task: 5, PID: -1, Start: 4})
	node := NewRecorder(42, 0, 64)
	ep := node.Record(Span{Kind: KEpoch, Name: "epoch 1", Node: 0, Core: -1, Task: -1, PID: -1, Start: 1000, Dur: 500})
	node.Record(Span{Kind: KQuantum, Name: "quantum", Parent: ep, Node: 0, Core: 1, Task: -1, PID: 3, Start: 1100, Dur: 200})
	node.Record(Span{Kind: KFault, Name: "fault", Parent: ep, Node: 0, Core: 1, Task: -1, PID: 3, Start: 1150, Dur: 40})
	return []Stream{
		{Name: "control", Spans: ctl.Spans(), Events: []trace.Event{
			{Kind: trace.EvCrash, Core: 2, At: 3},
			{Kind: trace.EvPlace, Core: 0, PID: 5, At: 6},
			{Kind: trace.EvFence, Core: 2, PID: 5, At: 7},
			{Kind: trace.EvShed, Core: 1, PID: 4, At: 9},
		}},
		{Name: "node0", Spans: node.Spans(), Events: []trace.Event{
			{Kind: trace.EvAccess, Core: 1, PID: 3, VA: 0x1000, Level: trace.LevelL2, Cycles: 10, At: 1120, Write: true},
			{Kind: trace.EvFault, Core: 1, PID: 3, VA: 0x2000, Cycles: 900, At: 1150},
			{Kind: trace.EvSwitch, Core: 1, PID: 3, At: 1300},
		}},
	}
}

func TestWriteChromeValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, "test", sampleStreams(t)); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if ct.OtherData["schemaVersion"] != "1" || ct.OtherData["tool"] != "test" {
		t.Fatalf("otherData = %v", ct.OtherData)
	}
	phases := map[string]int{}
	names := map[string]bool{}
	for _, e := range ct.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event without numeric pid: %v", e)
		}
	}
	if phases["M"] != 2 {
		t.Fatalf("want 2 process_name metadata events, got %d", phases["M"])
	}
	if phases["X"] == 0 || phases["i"] == 0 {
		t.Fatalf("phases missing complete/instant events: %v", phases)
	}
	for _, want := range []string{"process_name", "quantum", "access L2", "crash", "place"} {
		if !names[want] {
			t.Fatalf("chrome export missing event name %q", want)
		}
	}
	// Determinism: the same streams encode to the same bytes.
	var buf2 bytes.Buffer
	if err := WriteChrome(&buf2, "test", sampleStreams(t)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("chrome export is not byte-deterministic")
	}
}

func TestWriteJSONLValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, "test", sampleStreams(t)); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	var types []string
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		typ, _ := line["type"].(string)
		types = append(types, typ)
	}
	if types[0] != "header" {
		t.Fatalf("first line type = %q", types[0])
	}
	nspans, nevents := 0, 0
	for _, typ := range types[1:] {
		switch typ {
		case "span":
			nspans++
		case "event":
			nevents++
		default:
			t.Fatalf("unknown line type %q", typ)
		}
	}
	if nspans != 6 || nevents != 7 {
		t.Fatalf("spans=%d events=%d, want 6 and 7", nspans, nevents)
	}
}

func TestWriteBundle(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteBundle(dir, Bundle{
		Label:       "babelfish-epoch007-lost",
		Tool:        "bffleet",
		Trigger:     "container lost",
		Streams:     sampleStreams(t),
		MetricsProm: []byte("# TYPE fleet_lost counter\nfleet_lost 1\n"),
		Audit:       "fleet audit: 1 violation\n  - container 5: lost",
	})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "babelfish-epoch007-lost" {
		t.Fatalf("bundle path = %s", path)
	}
	for _, f := range []string{"trace.json", "trace.jsonl", "metrics.prom", "audit.txt"} {
		b, err := os.ReadFile(filepath.Join(path, f))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
		if len(b) == 0 {
			t.Fatalf("bundle file %s is empty", f)
		}
	}
	audit, _ := os.ReadFile(filepath.Join(path, "audit.txt"))
	if !strings.Contains(string(audit), "trigger: container lost") {
		t.Fatalf("audit.txt missing trigger provenance:\n%s", audit)
	}
	if _, err := WriteBundle(dir, Bundle{}); err == nil {
		t.Fatal("unlabelled bundle accepted")
	}
}
