package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"sort"
	"testing"
)

// tracePath / seriesPath optionally point at real tool-produced exports
// (`go test ./internal/obs -args -obs.trace=... -obs.series=...`). CI's
// obs-smoke job uses these to catch schema drift in actual bfsim/bffleet
// output; without them the tests validate synthetic exports.
var (
	tracePath  = flag.String("obs.trace", "", "path to a -trace-out Chrome JSON file to validate")
	seriesPath = flag.String("obs.series", "", "path to a -series-out JSONL file to validate")
)

// goldenTracePaths freezes the Chrome-export key shape of
// TraceSchemaVersion 1. "args" is a free-form string map (its keys vary
// by event kind) and is skipped like the report schema's "config".
var goldenTracePaths = []string{
	"otherData",
	"traceEvents",
	"traceEvents[].args",
	"traceEvents[].cat",
	"traceEvents[].dur",
	"traceEvents[].name",
	"traceEvents[].ph",
	"traceEvents[].pid",
	"traceEvents[].s",
	"traceEvents[].tid",
	"traceEvents[].ts",
}

var requiredTracePaths = []string{
	"otherData",
	"traceEvents",
	"traceEvents[].name",
	"traceEvents[].ph",
	"traceEvents[].pid",
	"traceEvents[].tid",
	"traceEvents[].ts",
}

// goldenJSONLPaths freezes the key set of every JSONL line type
// combined (header + span + event); each line contributes only the keys
// its type defines, so the union is validated per line below.
var goldenJSONLPaths = []string{
	"at",
	"core",
	"cycles",
	"detail",
	"dur",
	"id",
	"kind",
	"level",
	"name",
	"node",
	"parent",
	"pid",
	"schemaVersion",
	"start",
	"stream",
	"task",
	"tool",
	"type",
	"va",
}

// collectKeyPaths mirrors the telemetry schema test: every object key
// becomes a dotted path, "[]" marks array traversal, and the free-form
// "args" subtree is not descended into.
func collectKeyPaths(v any, prefix string, into map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			into[p] = true
			if k == "args" || k == "otherData" {
				continue
			}
			collectKeyPaths(child, p, into)
		}
	case []any:
		for _, child := range x {
			collectKeyPaths(child, prefix+"[]", into)
		}
	}
}

func TestTraceSchemaGolden(t *testing.T) {
	var raw []byte
	if *tracePath != "" {
		b, err := os.ReadFile(*tracePath)
		if err != nil {
			t.Fatalf("read -obs.trace file: %v", err)
		}
		raw = b
	} else {
		var buf bytes.Buffer
		if err := WriteChrome(&buf, "test", sampleStreams(t)); err != nil {
			t.Fatal(err)
		}
		raw = buf.Bytes()
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	got := make(map[string]bool)
	collectKeyPaths(v, "", got)
	golden := make(map[string]bool, len(goldenTracePaths))
	for _, p := range goldenTracePaths {
		golden[p] = true
	}
	var unknown []string
	for p := range got {
		if !golden[p] {
			unknown = append(unknown, p)
		}
	}
	sort.Strings(unknown)
	if len(unknown) > 0 {
		t.Errorf("trace contains key paths not in the TraceSchemaVersion %d golden set "+
			"(bump TraceSchemaVersion and update goldenTracePaths): %v", TraceSchemaVersion, unknown)
	}
	for _, p := range requiredTracePaths {
		if !got[p] {
			t.Errorf("required trace key path %q missing", p)
		}
	}
	// Semantic spot checks valid for real files too.
	var ct struct {
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatal(err)
	}
	if ct.OtherData["schemaVersion"] == "" || ct.OtherData["tool"] == "" {
		t.Fatalf("otherData missing provenance: %v", ct.OtherData)
	}
}

// seriesRaw returns the bytes to validate: the external -obs.series file
// or a synthetic JSONL export (the trace JSONL shares the line schema
// with the telemetry series sink's header/row layout where applicable).
func TestJSONLSchemaGolden(t *testing.T) {
	var raw []byte
	if *seriesPath != "" {
		b, err := os.ReadFile(*seriesPath)
		if err != nil {
			t.Fatalf("read -obs.series file: %v", err)
		}
		raw = b
	} else {
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, "test", sampleStreams(t)); err != nil {
			t.Fatal(err)
		}
		raw = buf.Bytes()
	}
	golden := make(map[string]bool, len(goldenJSONLPaths))
	for _, p := range goldenJSONLPaths {
		golden[p] = true
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	sawHeader := false
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", n+1, err)
		}
		n++
		typ, _ := line["type"].(string)
		if n == 1 {
			// Both the trace JSONL and the series sink lead with a typed
			// header line carrying schema provenance.
			if typ != "header" && typ != "series-header" {
				t.Fatalf("first line type = %q, want a header", typ)
			}
			sawHeader = true
		}
		for k := range line {
			// Series rows carry free-form metric-name keys under "values";
			// skip that subtree like the trace's "args".
			if typ == "sample" && (k == "values") {
				continue
			}
			if typ == "series-header" && (k == "names") {
				continue
			}
			if typ == "sample" || typ == "series-header" {
				if k == "type" || k == "cycle" || k == "epoch" || k == "values" ||
					k == "schemaVersion" || k == "tool" || k == "everyCycles" || k == "names" {
					continue
				}
				t.Errorf("line %d (%s): unknown key %q", n, typ, k)
				continue
			}
			if !golden[k] {
				t.Errorf("line %d (%s): key %q not in the TraceSchemaVersion %d golden set "+
					"(bump TraceSchemaVersion and update goldenJSONLPaths)", n, typ, k, TraceSchemaVersion)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawHeader || n < 2 {
		t.Fatalf("export has %d lines, header=%v", n, sawHeader)
	}
}

func TestTraceSchemaVersionIsOne(t *testing.T) {
	if TraceSchemaVersion != 1 {
		t.Fatalf("TraceSchemaVersion = %d: update the golden sets in schema_test.go "+
			"for the new schema, then adjust this test", TraceSchemaVersion)
	}
}
