package obs

import (
	"fmt"
	"os"
	"path/filepath"
)

// Bundle is one post-mortem artifact: everything needed to explain a
// failure after the fact, assembled at the moment the trigger fired.
// WriteBundle lays it out as a directory so each piece opens in its
// native tool (Perfetto for the trace, any Prometheus tooling for the
// metrics, a pager for the audit report).
type Bundle struct {
	// Label names the bundle directory. Deterministic — derived from the
	// run configuration and simulated time, never a wall clock — so two
	// identical runs produce identically-named bundles.
	Label string
	// Tool and Trigger record provenance ("bffleet", "container lost").
	Tool    string
	Trigger string
	// Streams is the flight-recorder contents: the bounded recent-span
	// window of every recorder at trigger time.
	Streams []Stream
	// MetricsProm is a Prometheus-text snapshot of the registry.
	MetricsProm []byte
	// Audit is the rendered audit report that fired (or confirmed) the
	// trigger.
	Audit string
}

// WriteBundle writes the bundle under dir/<Label>/ and returns the
// bundle directory. Files: trace.json (Chrome, Perfetto-loadable),
// trace.jsonl (compact stream), metrics.prom (registry snapshot),
// audit.txt (report + trigger provenance). An existing bundle directory
// is overwritten — re-running the same seed regenerates the same
// artifact.
func WriteBundle(dir string, b Bundle) (string, error) {
	if b.Label == "" {
		return "", fmt.Errorf("obs: bundle needs a label")
	}
	path := filepath.Join(dir, b.Label)
	if err := os.MkdirAll(path, 0o755); err != nil {
		return "", fmt.Errorf("obs: create bundle dir: %w", err)
	}
	tf, err := os.Create(filepath.Join(path, "trace.json"))
	if err != nil {
		return "", err
	}
	if err := WriteChrome(tf, b.Tool, b.Streams); err != nil {
		tf.Close()
		return "", err
	}
	if err := tf.Close(); err != nil {
		return "", err
	}
	jf, err := os.Create(filepath.Join(path, "trace.jsonl"))
	if err != nil {
		return "", err
	}
	if err := WriteJSONL(jf, b.Tool, b.Streams); err != nil {
		jf.Close()
		return "", err
	}
	if err := jf.Close(); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(path, "metrics.prom"), b.MetricsProm, 0o644); err != nil {
		return "", err
	}
	audit := fmt.Sprintf("trigger: %s\ntool: %s\n\n%s\n", b.Trigger, b.Tool, b.Audit)
	if err := os.WriteFile(filepath.Join(path, "audit.txt"), []byte(audit), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
