package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"babelfish/internal/trace"
)

// TraceSchemaVersion identifies the exported trace layout (Chrome JSON
// otherData and JSONL header). Any change to the key set MUST bump this
// constant — the golden schema test (schema_test.go) and CI's obs-smoke
// job fail otherwise.
const TraceSchemaVersion = 1

// Stream is one process-scope worth of observability data headed for an
// exporter: a node, an architecture, or the fleet control plane. Spans
// come from an obs.Recorder; Events optionally joins the flat event
// stream (a machine's trace.Ring, or fleet events converted through the
// fleet-level trace kinds) into the same export.
type Stream struct {
	// Name labels the stream ("babelfish/node3", "baseline", "control").
	Name   string
	Spans  []Span
	Events []trace.Event
}

// chromeEvent is one entry of the Chrome trace-event format. Ph "X" is a
// complete event (ts+dur), "i" an instant, "M" metadata. Perfetto loads
// the resulting file directly; ts/dur are simulated time (cycles or
// epochs), displayed as microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  uint64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope ("t")
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the exported file: the event array plus provenance.
type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData"`
}

// spanArgs renders a span's identity for the Args map. Chrome sorts map
// keys when marshalling, so the encoding is deterministic.
func spanArgs(s Span) map[string]string {
	a := map[string]string{
		"id":   fmt.Sprintf("%016x", uint64(s.ID)),
		"kind": s.Kind.String(),
	}
	if s.Parent != 0 {
		a["parent"] = fmt.Sprintf("%016x", uint64(s.Parent))
	}
	if s.Node >= 0 {
		a["node"] = fmt.Sprint(s.Node)
	}
	if s.Task >= 0 {
		a["task"] = fmt.Sprint(s.Task)
	}
	if s.PID >= 0 {
		a["pid"] = fmt.Sprint(s.PID)
	}
	if s.Detail != "" {
		a["detail"] = s.Detail
	}
	return a
}

// spanTid maps a span to a thread lane: core ID for machine spans, lane
// 0 for control-plane spans.
func spanTid(s Span) int {
	if s.Core >= 0 {
		return s.Core
	}
	return 0
}

// WriteChrome exports the streams as one Chrome trace-event JSON file.
// Every stream becomes a Perfetto process (pid = stream index) named by
// a metadata event; spans are complete events on per-core thread lanes,
// zero-duration spans and trace events are instants. Deterministic:
// streams, spans and events are emitted in the order given.
func WriteChrome(w io.Writer, tool string, streams []Stream) error {
	ct := chromeTrace{
		TraceEvents: []chromeEvent{},
		OtherData: map[string]string{
			"schemaVersion": fmt.Sprint(TraceSchemaVersion),
			"tool":          tool,
			"timebase":      "simulated (cycles for machine streams, epochs for control streams)",
		},
	}
	for pid, st := range streams {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": st.Name},
		})
		for _, s := range st.Spans {
			ev := chromeEvent{
				Name: s.Name, Cat: s.Kind.String(), Ts: s.Start,
				Pid: pid, Tid: spanTid(s), Args: spanArgs(s),
			}
			if s.Dur > 0 {
				ev.Ph, ev.Dur = "X", s.Dur
			} else {
				ev.Ph, ev.S = "i", "t"
			}
			ct.TraceEvents = append(ct.TraceEvents, ev)
		}
		for _, e := range st.Events {
			ct.TraceEvents = append(ct.TraceEvents, traceEventChrome(pid, e))
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// traceEventChrome converts one flat trace.Event. Accesses and faults
// carry their latency as the duration; switches and fleet events are
// instants (fleet events use Core as the node and PID as the container,
// see the trace package).
func traceEventChrome(pid int, e trace.Event) chromeEvent {
	ev := chromeEvent{
		Name: e.Kind.String(), Cat: "trace", Ts: uint64(e.At),
		Pid: pid, Tid: int(e.Core),
	}
	args := map[string]string{}
	switch e.Kind {
	case trace.EvAccess:
		ev.Name = "access " + trace.LevelName(e.Level)
		ev.Ph, ev.Dur = "X", uint64(e.Cycles)
		args["va"] = fmt.Sprintf("%#x", uint64(e.VA))
		args["pid"] = fmt.Sprint(e.PID)
		if e.Write {
			args["write"] = "1"
		}
		if e.Instr {
			args["instr"] = "1"
		}
	case trace.EvFault:
		ev.Ph, ev.Dur = "X", uint64(e.Cycles)
		args["va"] = fmt.Sprintf("%#x", uint64(e.VA))
		args["pid"] = fmt.Sprint(e.PID)
	case trace.EvPlace, trace.EvCrash, trace.EvFence, trace.EvShed:
		ev.Ph, ev.S = "i", "t"
		args["node"] = fmt.Sprint(e.Core)
		if e.Kind != trace.EvCrash {
			args["container"] = fmt.Sprint(e.PID)
		}
	default: // EvSwitch
		ev.Ph, ev.S = "i", "t"
		args["pid"] = fmt.Sprint(e.PID)
	}
	if len(args) > 0 {
		ev.Args = args
	}
	return ev
}

// jsonlSpan is one span line of the JSONL export.
type jsonlSpan struct {
	Type   string `json:"type"` // "span"
	Stream string `json:"stream"`
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Node   *int   `json:"node,omitempty"`
	Core   *int   `json:"core,omitempty"`
	Task   *int   `json:"task,omitempty"`
	PID    *int   `json:"pid,omitempty"`
	Start  uint64 `json:"start"`
	Dur    uint64 `json:"dur"`
	Detail string `json:"detail,omitempty"`
}

// jsonlEvent is one flat-event line of the JSONL export.
type jsonlEvent struct {
	Type   string `json:"type"` // "event"
	Stream string `json:"stream"`
	Kind   string `json:"kind"`
	Core   int    `json:"core"`
	PID    int    `json:"pid"`
	VA     string `json:"va,omitempty"`
	Level  string `json:"level,omitempty"`
	Cycles uint64 `json:"cycles,omitempty"`
	At     uint64 `json:"at"`
}

// jsonlHeader is the first line of the JSONL export.
type jsonlHeader struct {
	Type          string `json:"type"` // "header"
	SchemaVersion int    `json:"schemaVersion"`
	Tool          string `json:"tool"`
}

func optInt(v int) *int {
	if v < 0 {
		return nil
	}
	c := v
	return &c
}

// WriteJSONL exports the streams as a compact JSON-lines file: a header
// line, then one line per span and per flat event, in stream order.
func WriteJSONL(w io.Writer, tool string, streams []Stream) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Type: "header", SchemaVersion: TraceSchemaVersion, Tool: tool}); err != nil {
		return err
	}
	for _, st := range streams {
		for _, s := range st.Spans {
			line := jsonlSpan{
				Type: "span", Stream: st.Name,
				ID:   fmt.Sprintf("%016x", uint64(s.ID)),
				Kind: s.Kind.String(), Name: s.Name,
				Node: optInt(s.Node), Core: optInt(s.Core),
				Task: optInt(s.Task), PID: optInt(s.PID),
				Start: s.Start, Dur: s.Dur, Detail: s.Detail,
			}
			if s.Parent != 0 {
				line.Parent = fmt.Sprintf("%016x", uint64(s.Parent))
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
		for _, e := range st.Events {
			line := jsonlEvent{
				Type: "event", Stream: st.Name, Kind: e.Kind.String(),
				Core: int(e.Core), PID: int(e.PID), At: uint64(e.At), Cycles: uint64(e.Cycles),
			}
			if e.VA != 0 {
				line.VA = fmt.Sprintf("%#x", uint64(e.VA))
			}
			if e.Kind == trace.EvAccess {
				line.Level = trace.LevelName(e.Level)
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
