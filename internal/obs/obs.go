// Package obs is the simulator's causal tracing layer: spans with
// deterministic IDs threaded through every level of the stack — fleet
// request, scheduler placement, node epoch, machine quantum, container
// task, MMU fault — plus exporters (Chrome trace-event JSON for
// Perfetto, compact JSONL) and a flight recorder that turns audit
// violations and OOM/condemnation events into self-contained post-mortem
// bundles.
//
// Determinism is the design constraint everything else bends around:
// span IDs derive from (seed, scope, sequence) with a splitmix64 mix —
// never from wall clocks or addresses — and every recorder is owned by
// exactly one sequential actor (one node's machine, or the fleet control
// plane), so a traced run exports byte-identical artifacts at any
// worker-pool width. Timebases are simulated: machine spans are stamped
// in core cycles, control-plane spans in epochs.
//
// The whole layer is opt-in and free when off: a disabled recorder is a
// nil pointer, and every instrumentation seam is a single nil check.
package obs

import "fmt"

// SpanID identifies a span. Zero means "no span" (an absent parent).
type SpanID uint64

// Kind classifies a span.
type Kind uint8

const (
	// KRequest is a fleet container's whole-life request: queued at
	// cluster build (or re-queued after a failure) until placed.
	KRequest Kind = iota
	// KPlace is one successful scheduler placement.
	KPlace
	// KEpoch is one node's data-plane epoch (machine timebase).
	KEpoch
	// KQuantum is one scheduling quantum of a task on a core.
	KQuantum
	// KFault is the kernel fault handling inside one translation.
	KFault
	// KEvent is an instant control-plane event (a fleet Event).
	KEvent
	// KViolation is an audit violation discovered at a quiesce point.
	KViolation
	// KCell is one experiment-plan cell (bfbench's suite decomposition).
	KCell

	numKinds
)

var kindNames = [...]string{
	KRequest: "request", KPlace: "place", KEpoch: "epoch", KQuantum: "quantum",
	KFault: "fault", KEvent: "event", KViolation: "violation", KCell: "cell",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NumKinds reports the number of defined span kinds.
func NumKinds() int { return int(numKinds) }

// Span is one causally-linked unit of work. Numeric subject fields use
// -1 for "not applicable"; Start/Dur are in the owning stream's simulated
// timebase (cycles for machine streams, epochs for the control plane).
type Span struct {
	ID     SpanID
	Parent SpanID
	Kind   Kind
	Name   string
	Node   int // fleet node, -1 outside the fleet
	Core   int // machine core, -1 for control-plane spans
	Task   int // fleet container ID, -1 outside the fleet
	PID    int // process ID on a machine, -1 when not process-bound
	Start  uint64
	Dur    uint64
	Detail string
}

// Options configures the layer for one run.
type Options struct {
	// Enabled switches span recording on.
	Enabled bool
	// Depth bounds each recorder's ring (0 = DefaultDepth).
	Depth int
	// FlightDir, when non-empty, arms the flight recorder: post-mortem
	// bundles are written under this directory.
	FlightDir string
}

// DefaultDepth is the per-recorder ring bound when Options.Depth is 0.
const DefaultDepth = 4096

// RingDepth resolves Options.Depth.
func (o Options) RingDepth() int {
	if o.Depth > 0 {
		return o.Depth
	}
	return DefaultDepth
}

// splitmix64 is the avalanche mix behind span IDs (same constants as the
// memsys injector's coin flips).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Recorder is a bounded ring of spans owned by one sequential actor.
// IDs are a pure function of (seed, scope, per-recorder sequence), so a
// run's span IDs are identical no matter how node stepping is scheduled
// across workers. Not safe for concurrent use — one recorder per actor.
type Recorder struct {
	seed   uint64
	scope  uint64
	seq    uint64
	buf    []Span
	next   int
	count  uint64
	parent SpanID
}

// NewRecorder builds a recorder for one actor. scope distinguishes
// actors sharing a seed (node ID, or ControlScope for the control
// plane); depth bounds the ring (<1 clamps to 1).
func NewRecorder(seed, scope uint64, depth int) *Recorder {
	if depth < 1 {
		depth = 1
	}
	return &Recorder{seed: seed, scope: scope, buf: make([]Span, depth)}
}

// ControlScope is the conventional scope of a fleet control-plane
// recorder (node recorders use their node ID).
const ControlScope = ^uint64(0)

// NewID mints the next deterministic span ID. Never zero.
func (r *Recorder) NewID() SpanID {
	r.seq++
	return SpanID(splitmix64(r.seed^splitmix64(r.scope)^r.seq) | 1)
}

// Record stores a span, minting its ID if unset, and returns the ID.
// The oldest span is evicted when the ring is full.
func (r *Recorder) Record(s Span) SpanID {
	if s.ID == 0 {
		s.ID = r.NewID()
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.count++
	return s.ID
}

// SetParent installs the default parent for spans recorded by deeper
// layers (the node's current epoch span, say). Parent reads it back.
func (r *Recorder) SetParent(id SpanID) { r.parent = id }

// Parent returns the recorder's current default parent span.
func (r *Recorder) Parent() SpanID { return r.parent }

// Len reports the number of spans currently held.
func (r *Recorder) Len() int {
	if r.count < uint64(len(r.buf)) {
		return int(r.count)
	}
	return len(r.buf)
}

// Total reports the number of spans ever recorded (eviction included).
func (r *Recorder) Total() uint64 { return r.count }

// Spans returns the held spans oldest-first.
func (r *Recorder) Spans() []Span {
	n := r.Len()
	out := make([]Span, 0, n)
	start := 0
	if r.count >= uint64(len(r.buf)) {
		start = r.next
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Find returns the most recent held span satisfying pred (tests and the
// causal-chain walker).
func (r *Recorder) Find(pred func(Span) bool) (Span, bool) {
	spans := r.Spans()
	for i := len(spans) - 1; i >= 0; i-- {
		if pred(spans[i]) {
			return spans[i], true
		}
	}
	return Span{}, false
}

// Ancestry walks the parent chain of the span with the given ID through
// the supplied spans, returning the chain from the span itself up to the
// root (or until a parent is missing from the set).
func Ancestry(spans []Span, id SpanID) []Span {
	byID := make(map[SpanID]Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	var chain []Span
	for id != 0 {
		s, ok := byID[id]
		if !ok {
			break
		}
		chain = append(chain, s)
		if s.Parent == id {
			break // defensive: self-parent must not loop
		}
		id = s.Parent
	}
	return chain
}
