// Package loadgen is the fleet's open-loop arrival engine: a
// deterministic, seeded, wall-clock-free request generator that turns a
// composable offered-load curve (constant RPS, linear ramp, diurnal
// sinusoid, flash crowd, or a replayed trace) into per-epoch
// per-container request admissions.
//
// Open-loop means arrivals never slow down because the system is
// struggling: the Shape is a pure function of the epoch number, so
// offered load holds during degradation and the backlog (queueing
// delay, shed/drop counts) becomes the measurement rather than an
// artifact. Every function here is deterministic in (shape, seed,
// epoch) — no wall clock, no global state — which is what lets the
// fleet stay byte-identical at any worker-pool width.
package loadgen

import "math"

// Shape is an offered-load curve: Total returns the fleet-wide number
// of requests offered during 0-based epoch e. Totals are real-valued
// (e.g. 2.5 requests/epoch); Split's carry accumulator converts them
// into integer admissions without losing the fraction.
type Shape interface {
	Name() string
	Total(epoch int) float64
}

// Source assigns offered load to containers. Arrivals fills out[i]
// with the number of requests admitted to container i during the given
// 0-based epoch; len(out) is the container count. Sources may carry
// fractional state across consecutive epochs, but must self-reset when
// replayed from epoch 0 so one Source can drive several cluster runs
// (bffleet -arch both) identically.
type Source interface {
	Name() string
	Arrivals(epoch int, out []int)
}

// Constant offers a flat RPS requests per epoch, fleet-wide.
type Constant struct {
	RPS float64
}

func (c Constant) Name() string            { return "const" }
func (c Constant) Total(epoch int) float64 { return c.RPS }

// Ramp climbs linearly from Base at epoch 0 to Peak at epoch Epochs-1,
// then holds Peak.
type Ramp struct {
	Base, Peak float64
	Epochs     int
}

func (r Ramp) Name() string { return "ramp" }

func (r Ramp) Total(epoch int) float64 {
	if r.Epochs <= 1 || epoch >= r.Epochs-1 {
		return r.Peak
	}
	if epoch < 0 {
		return r.Base
	}
	frac := float64(epoch) / float64(r.Epochs-1)
	return r.Base + (r.Peak-r.Base)*frac
}

// Diurnal oscillates sinusoidally between Base (trough, at epoch 0)
// and Peak (crest, half a Period later).
type Diurnal struct {
	Base, Peak float64
	Period     int
}

func (d Diurnal) Name() string { return "diurnal" }

func (d Diurnal) Total(epoch int) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	phase := 2 * math.Pi * float64(epoch) / float64(d.Period)
	return d.Base + (d.Peak-d.Base)*(1-math.Cos(phase))/2
}

// Flash offers Base everywhere except a flash crowd of Peak during
// epochs [Start, Start+Len).
type Flash struct {
	Base, Peak float64
	Start, Len int
}

func (f Flash) Name() string { return "flash" }

func (f Flash) Total(epoch int) float64 {
	if epoch >= f.Start && epoch < f.Start+f.Len {
		return f.Peak
	}
	return f.Base
}

// Split spreads a fleet-wide Shape across containers: each epoch's
// real-valued total is converted to an integer via a carry accumulator
// (so fractions are never lost, only deferred), divided evenly, and the
// remainder dealt round-robin from a seeded per-epoch rotation so no
// container is systematically favoured. containers is only advisory —
// Arrivals adapts to len(out) — but a positive value documents the
// intended fan-out.
//
// The returned Source self-resets whenever Arrivals rewinds (epoch 0 or
// any epoch below the last one served), so the same value can drive
// several cluster runs back to back and produce identical admissions.
func Split(shape Shape, containers int, seed uint64) Source {
	_ = containers
	return &splitSource{shape: shape, seed: seed}
}

type splitSource struct {
	shape Shape
	seed  uint64
	next  int     // next epoch the carry accumulator expects
	carry float64 // fractional requests owed from earlier epochs
}

func (s *splitSource) Name() string { return s.shape.Name() }

func (s *splitSource) Arrivals(epoch int, out []int) {
	for i := range out {
		out[i] = 0
	}
	if epoch < 0 {
		return
	}
	if epoch < s.next || epoch == 0 {
		s.next, s.carry = 0, 0 // rewound: a fresh run replays from scratch
	}
	// Roll the carry through any skipped epochs so admissions depend
	// only on the epoch sequence, not on which epochs were observed.
	n := 0
	for ; s.next <= epoch; s.next++ {
		want := s.carry + s.shape.Total(s.next)
		n = int(math.Floor(want))
		s.carry = want - math.Floor(want)
	}
	if n <= 0 || len(out) == 0 {
		return
	}
	base, rem := n/len(out), n%len(out)
	for i := range out {
		out[i] = base
	}
	start := int(mix64(s.seed^(uint64(epoch)+1)*0x9e3779b97f4a7c15) % uint64(len(out)))
	for k := 0; k < rem; k++ {
		out[(start+k)%len(out)]++
	}
}

// mix64 is the splitmix64 finalizer, the same mixing primitive the rest
// of the simulator uses for seed derivation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
