package loadgen

import (
	"math"
	"strings"
	"testing"
)

func sumArrivals(src Source, epochs, containers int) (total int, perEpoch []int) {
	out := make([]int, containers)
	perEpoch = make([]int, epochs)
	for e := 0; e < epochs; e++ {
		src.Arrivals(e, out)
		for _, n := range out {
			perEpoch[e] += n
		}
		total += perEpoch[e]
	}
	return total, perEpoch
}

func shapeTotal(s Shape, epochs int) float64 {
	var t float64
	for e := 0; e < epochs; e++ {
		t += s.Total(e)
	}
	return t
}

// The carry accumulator must conserve offered load: integer admissions
// may trail the real-valued curve by at most the outstanding fraction.
func TestSplitConservesTotals(t *testing.T) {
	shapes := []Shape{
		Constant{RPS: 2.5},
		Ramp{Base: 1, Peak: 33, Epochs: 48},
		Diurnal{Base: 2, Peak: 20, Period: 24},
		Flash{Base: 3, Peak: 97.5, Start: 10, Len: 5},
	}
	for _, s := range shapes {
		const epochs, containers = 48, 7
		got, _ := sumArrivals(Split(s, containers, 42), epochs, containers)
		want := shapeTotal(s, epochs)
		// Admissions may trail the curve by at most the outstanding
		// fraction (one request, plus float slack) and never exceed it.
		if float64(got) > want+1e-6 || want-float64(got) > 1+1e-6 {
			t.Errorf("%s: admitted %d, offered %.2f (carry must keep them within 1)", s.Name(), got, want)
		}
	}
}

func TestFlashSpikeShape(t *testing.T) {
	f := Flash{Base: 2, Peak: 100, Start: 8, Len: 4}
	_, perEpoch := sumArrivals(Split(f, 5, 1), 20, 5)
	for e, n := range perEpoch {
		inSpike := e >= 8 && e < 12
		if inSpike && n < 99 {
			t.Errorf("epoch %d inside spike admitted %d, want ~100", e, n)
		}
		if !inSpike && n > 3 {
			t.Errorf("epoch %d outside spike admitted %d, want ~2", e, n)
		}
	}
}

func TestRampMonotone(t *testing.T) {
	r := Ramp{Base: 1, Peak: 50, Epochs: 32}
	for e := 1; e < 40; e++ {
		if r.Total(e) < r.Total(e-1) {
			t.Fatalf("ramp decreased at epoch %d: %f -> %f", e, r.Total(e-1), r.Total(e))
		}
	}
	if got := r.Total(31); got != 50 {
		t.Errorf("ramp peak: got %f, want 50", got)
	}
	if got := r.Total(100); got != 50 {
		t.Errorf("ramp hold: got %f, want 50", got)
	}
}

func TestDiurnalBounds(t *testing.T) {
	d := Diurnal{Base: 4, Peak: 16, Period: 24}
	if got := d.Total(0); math.Abs(got-4) > 1e-9 {
		t.Errorf("trough: got %f, want 4", got)
	}
	if got := d.Total(12); math.Abs(got-16) > 1e-9 {
		t.Errorf("crest: got %f, want 16", got)
	}
	for e := 0; e < 48; e++ {
		if v := d.Total(e); v < 4-1e-9 || v > 16+1e-9 {
			t.Fatalf("epoch %d out of bounds: %f", e, v)
		}
	}
}

// Two Sources with the same (shape, seed) must agree exactly, and a
// rewind to epoch 0 must replay the identical schedule — that is what
// lets bffleet -arch both reuse one Source for both cluster runs.
func TestSplitDeterministicAndResets(t *testing.T) {
	mk := func() Source { return Split(Flash{Base: 2.3, Peak: 41.7, Start: 5, Len: 3}, 6, 99) }
	a, b := mk(), mk()
	const epochs, containers = 16, 6
	outA := make([]int, containers)
	outB := make([]int, containers)
	var first [][]int
	for e := 0; e < epochs; e++ {
		a.Arrivals(e, outA)
		b.Arrivals(e, outB)
		for i := range outA {
			if outA[i] != outB[i] {
				t.Fatalf("epoch %d container %d: %d vs %d", e, i, outA[i], outB[i])
			}
		}
		first = append(first, append([]int(nil), outA...))
	}
	// Rewind and replay on the same Source.
	for e := 0; e < epochs; e++ {
		a.Arrivals(e, outA)
		for i := range outA {
			if outA[i] != first[e][i] {
				t.Fatalf("replay diverged at epoch %d container %d: %d vs %d", e, i, outA[i], first[e][i])
			}
		}
	}
}

func TestTraceReplayFidelity(t *testing.T) {
	const csv = `# comment line
epoch,container,requests

0,0,3
0,2,1
1,1,5
1,1,2
7,3,9
`
	tr, err := ParseTrace(strings.NewReader(csv), "test")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.MaxContainer(); got != 3 {
		t.Errorf("MaxContainer: got %d, want 3", got)
	}
	if got := tr.MaxEpoch(); got != 7 {
		t.Errorf("MaxEpoch: got %d, want 7", got)
	}
	out := make([]int, 4)
	tr.Arrivals(0, out)
	if out[0] != 3 || out[1] != 0 || out[2] != 1 || out[3] != 0 {
		t.Errorf("epoch 0: got %v", out)
	}
	tr.Arrivals(1, out)
	if out[1] != 7 { // duplicate rows accumulate
		t.Errorf("epoch 1 container 1: got %d, want 7", out[1])
	}
	tr.Arrivals(3, out)
	for i, n := range out {
		if n != 0 {
			t.Errorf("silent epoch 3 container %d: got %d, want 0", i, n)
		}
	}
}

func TestTraceParseErrors(t *testing.T) {
	bad := []string{
		"0,1",     // too few fields
		"0,1,2,3", // too many fields
		"a,1,2",   // non-integer epoch
		"0,-1,2",  // negative container
		"0,1,-2",  // negative requests
	}
	for _, csv := range bad {
		if _, err := ParseTrace(strings.NewReader(csv), "bad"); err == nil {
			t.Errorf("ParseTrace(%q): want error, got nil", csv)
		}
	}
}

func TestLoadTraceFile(t *testing.T) {
	tr, err := LoadTrace("testdata/trace.csv")
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxContainer() < 0 || tr.MaxEpoch() < 0 {
		t.Fatalf("testdata trace is empty")
	}
}
