package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Trace replays a recorded arrival schedule: one `epoch,container,requests`
// CSV row per admission burst. Traces are stateless — Arrivals is a pure
// lookup — so a single Trace can drive any number of cluster runs.
type Trace struct {
	name   string
	epochs map[int]map[int]int // epoch -> container -> requests
	maxCt  int
	maxEp  int
}

// LoadTrace reads a trace file from disk. The format is CSV with three
// integer fields `epoch,container,requests`; blank lines, `#` comments,
// and an optional literal `epoch,container,requests` header are
// ignored. Duplicate (epoch, container) rows accumulate.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	defer f.Close()
	return ParseTrace(f, path)
}

// ParseTrace parses trace CSV from r; name labels errors and Name().
func ParseTrace(r io.Reader, name string) (*Trace, error) {
	t := &Trace{name: name, epochs: make(map[int]map[int]int), maxCt: -1}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || line == "epoch,container,requests" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("loadgen: %s:%d: want 3 fields epoch,container,requests, got %d", name, lineNo, len(fields))
		}
		vals := make([]int, 3)
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("loadgen: %s:%d: field %d: %v", name, lineNo, i+1, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("loadgen: %s:%d: field %d: negative value %d", name, lineNo, i+1, v)
			}
			vals[i] = v
		}
		ep, ct, n := vals[0], vals[1], vals[2]
		row := t.epochs[ep]
		if row == nil {
			row = make(map[int]int)
			t.epochs[ep] = row
		}
		row[ct] += n
		if ct > t.maxCt {
			t.maxCt = ct
		}
		if ep > t.maxEp {
			t.maxEp = ep
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", name, err)
	}
	return t, nil
}

func (t *Trace) Name() string { return "trace(" + t.name + ")" }

// MaxContainer returns the highest container index referenced by the
// trace, or -1 for an empty trace. Callers validate it against the
// fleet's container count before replaying.
func (t *Trace) MaxContainer() int { return t.maxCt }

// MaxEpoch returns the last epoch with any arrivals (-1 if empty).
func (t *Trace) MaxEpoch() int {
	if len(t.epochs) == 0 {
		return -1
	}
	return t.maxEp
}

// Arrivals replays the recorded admissions for one epoch. Containers
// beyond len(out) are silently ignored (callers are expected to have
// validated MaxContainer).
func (t *Trace) Arrivals(epoch int, out []int) {
	for i := range out {
		out[i] = 0
	}
	for ct, n := range t.epochs[epoch] {
		if ct < len(out) {
			out[ct] += n
		}
	}
}
