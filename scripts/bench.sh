#!/usr/bin/env bash
# bench.sh — the per-PR bench runner: measures the translation hot path
# (go test -bench) and the full quick-scale experiment suite serial vs
# parallel, verifies the parallel run is byte-identical, and emits a
# machine-readable BENCH_<n>.json extending the perf trajectory. The
# previous PR's BENCH_<n-1>.json, when present, is embedded as the
# before_this_pr baseline so regressions are visible in one file.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_4.json}
pr=$(basename "$out" .json | sed 's/^BENCH_//')
prev="BENCH_$((pr - 1)).json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== micro-benchmarks (internal/sim + facade) =="
go test -run '^$' -bench 'BenchmarkTranslate$|BenchmarkMachineRun' \
    -benchtime 1s ./internal/sim/ | tee "$tmp/bench_sim.txt"
go test -run '^$' -bench 'BenchmarkTLBLookup$|BenchmarkTranslateWalk$' \
    -benchtime 1s . | tee "$tmp/bench_root.txt"

# ns_of NAME FILE — ns/op of one benchmark line ("Name-8  N  12.3 ns/op").
ns_of() {
    awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { print $3; exit }' "$2"
}
ns_translate=$(ns_of BenchmarkTranslate "$tmp/bench_sim.txt")
ns_run_base=$(ns_of 'BenchmarkMachineRun/Baseline' "$tmp/bench_sim.txt")
ns_run_bf=$(ns_of 'BenchmarkMachineRun/BabelFish' "$tmp/bench_sim.txt")
ns_tlb=$(ns_of BenchmarkTLBLookup "$tmp/bench_root.txt")
ns_walk=$(ns_of BenchmarkTranslateWalk "$tmp/bench_root.txt")

echo "== experiment suite wall-clock: jobs=1 vs jobs=4 =="
go build -o "$tmp/bfbench" ./cmd/bfbench

t0=$(date +%s%N)
"$tmp/bfbench" -quick -format json -jobs 1 > "$tmp/serial.json"
t1=$(date +%s%N)
"$tmp/bfbench" -quick -format json -jobs 4 > "$tmp/par.json"
t2=$(date +%s%N)

serial_s=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b-a)/1e9 }')
par_s=$(awk -v a="$t1" -v b="$t2" 'BEGIN { printf "%.3f", (b-a)/1e9 }')
speedup=$(awk -v s="$serial_s" -v p="$par_s" 'BEGIN { printf "%.2f", s/p }')

identical=true
if ! cmp -s "$tmp/serial.json" "$tmp/par.json"; then
    identical=false
    echo "FAIL: serial and jobs=4 suite output diverge" >&2
fi
echo "serial ${serial_s}s, jobs=4 ${par_s}s (speedup ${speedup}x), identical=$identical"

# Previous PR's numbers become this file's baseline (inner lines of its
# benchmarks_ns_per_op object, verbatim).
if [ -f "$prev" ]; then
    before=$(awk '/"benchmarks_ns_per_op": \{/,/\}/' "$prev" | sed '1d;$d')
    before_note="measured at the pre-PR tree ($prev), same benchmarks"
else
    before=""
    before_note="no $prev found; first measured PR"
fi

ncpu=$(nproc 2>/dev/null || echo 1)
cat > "$out" <<EOF
{
  "pr": $pr,
  "generated": "$(date -u +%FT%TZ)",
  "host": {
    "cpus": $ncpu,
    "go": "$(go env GOVERSION)"
  },
  "suite": {
    "command": "bfbench -quick -format json",
    "serial_seconds": $serial_s,
    "jobs4_seconds": $par_s,
    "speedup": $speedup,
    "output_identical": $identical,
    "note": "cells are independent machines, so the jobs=4 speedup scales with host CPUs; this run used a ${ncpu}-CPU host"
  },
  "benchmarks_ns_per_op": {
    "BenchmarkTranslate": $ns_translate,
    "BenchmarkMachineRun/Baseline": $ns_run_base,
    "BenchmarkMachineRun/BabelFish": $ns_run_bf,
    "BenchmarkTLBLookup": $ns_tlb,
    "BenchmarkTranslateWalk": $ns_walk
  },
  "before_this_pr_ns_per_op": {
    "note": "$before_note"$([ -n "$before" ] && echo ,)
$before
  }
}
EOF
echo "wrote $out"
[ "$identical" = true ]
