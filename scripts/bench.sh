#!/usr/bin/env bash
# bench.sh — the per-PR bench runner: measures the translation hot path
# and the fleet control loop (go test -bench) and the full quick-scale
# experiment suite serial vs parallel, verifies the parallel run is
# byte-identical, and emits a machine-readable BENCH_<n>.json extending
# the perf trajectory. The previous PR's BENCH_<n-1>.json is required —
# it is embedded as the before_this_pr baseline so regressions are
# visible in one file; a missing or malformed baseline aborts the run
# rather than silently emitting a trajectory with a hole in it.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_6.json}
pr=$(basename "$out" .json | sed 's/^BENCH_//')
prev="BENCH_$((pr - 1)).json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# The baseline is checked before spending minutes benchmarking.
if [ ! -f "$prev" ]; then
    echo "bench.sh: previous baseline $prev not found." >&2
    echo "bench.sh: the perf trajectory needs the pre-PR numbers; check out the" >&2
    echo "bench.sh: previous PR's $prev (or pass the right output name, e.g." >&2
    echo "bench.sh: 'scripts/bench.sh BENCH_$pr.json' expects $prev beside it)." >&2
    exit 1
fi
before=$(awk '/"benchmarks_ns_per_op": \{/,/\}/' "$prev" | sed '1d;$d')
if [ -z "$before" ]; then
    echo "bench.sh: $prev is malformed: no benchmarks_ns_per_op object found." >&2
    echo "bench.sh: regenerate it at the pre-PR tree before benchmarking this one." >&2
    exit 1
fi
if echo "$before" | grep -Evq '^\s*"[^"]+": [0-9]+(\.[0-9]+)?,?\s*$'; then
    echo "bench.sh: $prev is malformed: benchmarks_ns_per_op has non-numeric entries:" >&2
    echo "$before" | grep -Ev '^\s*"[^"]+": [0-9]+(\.[0-9]+)?,?\s*$' >&2
    exit 1
fi
before_note="measured at the pre-PR tree ($prev), same benchmarks"

echo "== micro-benchmarks (internal/sim + facade + fleet) =="
go test -run '^$' -bench 'BenchmarkTranslate$|BenchmarkMachineRun' \
    -benchtime 1s ./internal/sim/ | tee "$tmp/bench_sim.txt"
go test -run '^$' -bench 'BenchmarkTLBLookup$|BenchmarkTranslateWalk$' \
    -benchtime 1s . | tee "$tmp/bench_root.txt"
go test -run '^$' -bench 'BenchmarkFleetEpoch$' \
    -benchtime 1s ./internal/fleet/ | tee "$tmp/bench_fleet.txt"

# ns_of NAME FILE — ns/op of one benchmark line ("Name-8  N  12.3 ns/op");
# fails loudly when the benchmark did not produce a number.
ns_of() {
    local ns
    ns=$(awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { print $3; exit }' "$2")
    if [ -z "$ns" ]; then
        echo "bench.sh: benchmark $1 produced no ns/op line in $2" >&2
        exit 1
    fi
    echo "$ns"
}
ns_translate=$(ns_of BenchmarkTranslate "$tmp/bench_sim.txt")
ns_run_base=$(ns_of 'BenchmarkMachineRun/Baseline' "$tmp/bench_sim.txt")
ns_run_bf=$(ns_of 'BenchmarkMachineRun/BabelFish' "$tmp/bench_sim.txt")
ns_tlb=$(ns_of BenchmarkTLBLookup "$tmp/bench_root.txt")
ns_walk=$(ns_of BenchmarkTranslateWalk "$tmp/bench_root.txt")
ns_fleet=$(ns_of BenchmarkFleetEpoch "$tmp/bench_fleet.txt")

echo "== experiment suite wall-clock: jobs=1 vs jobs=4 =="
go build -o "$tmp/bfbench" ./cmd/bfbench

t0=$(date +%s%N)
"$tmp/bfbench" -quick -format json -jobs 1 > "$tmp/serial.json"
t1=$(date +%s%N)
"$tmp/bfbench" -quick -format json -jobs 4 > "$tmp/par.json"
t2=$(date +%s%N)

serial_s=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b-a)/1e9 }')
par_s=$(awk -v a="$t1" -v b="$t2" 'BEGIN { printf "%.3f", (b-a)/1e9 }')
speedup=$(awk -v s="$serial_s" -v p="$par_s" 'BEGIN { printf "%.2f", s/p }')

identical=true
if ! cmp -s "$tmp/serial.json" "$tmp/par.json"; then
    identical=false
    echo "FAIL: serial and jobs=4 suite output diverge" >&2
fi
echo "serial ${serial_s}s, jobs=4 ${par_s}s (speedup ${speedup}x), identical=$identical"

echo "== fleet chaos replay: seeded node kills, jobs=1 vs jobs=4 =="
go build -o "$tmp/bffleet" ./cmd/bffleet
fleet_flags=(-arch babelfish -nodes 8 -containers 16 -epochs 24
             -kill-nth 9 -kill-max 1 -part-nth 13 -part-max 1 -audit)
"$tmp/bffleet" "${fleet_flags[@]}" -jobs 1 > "$tmp/fleet_serial.txt"
"$tmp/bffleet" "${fleet_flags[@]}" -jobs 4 > "$tmp/fleet_par.txt"
fleet_identical=true
if ! cmp -s "$tmp/fleet_serial.txt" "$tmp/fleet_par.txt"; then
    fleet_identical=false
    echo "FAIL: fleet chaos run diverges between jobs=1 and jobs=4" >&2
fi
echo "fleet chaos replay identical=$fleet_identical"

# Host metadata: ns/op numbers are only comparable across PRs when the
# host shape matches, so record enough to spot a host change in the
# trajectory (CPU count, effective GOMAXPROCS, OS/arch, toolchain).
ncpu=$(nproc 2>/dev/null || echo 1)
gomaxprocs=${GOMAXPROCS:-$ncpu}
cat > "$out" <<EOF
{
  "pr": $pr,
  "generated": "$(date -u +%FT%TZ)",
  "host": {
    "cpus": $ncpu,
    "gomaxprocs": $gomaxprocs,
    "os": "$(go env GOOS)",
    "arch": "$(go env GOARCH)",
    "go": "$(go env GOVERSION)"
  },
  "suite": {
    "command": "bfbench -quick -format json",
    "serial_seconds": $serial_s,
    "jobs4_seconds": $par_s,
    "speedup": $speedup,
    "output_identical": $identical,
    "note": "cells are independent machines, so the jobs=4 speedup scales with host CPUs; this run used a ${ncpu}-CPU host"
  },
  "fleet": {
    "command": "bffleet ${fleet_flags[*]}",
    "replay_identical": $fleet_identical
  },
  "benchmarks_ns_per_op": {
    "BenchmarkTranslate": $ns_translate,
    "BenchmarkMachineRun/Baseline": $ns_run_base,
    "BenchmarkMachineRun/BabelFish": $ns_run_bf,
    "BenchmarkTLBLookup": $ns_tlb,
    "BenchmarkTranslateWalk": $ns_walk,
    "BenchmarkFleetEpoch": $ns_fleet
  },
  "before_this_pr_ns_per_op": {
    "note": "$before_note",
$before
  }
}
EOF
echo "wrote $out"
[ "$identical" = true ] && [ "$fleet_identical" = true ]
