#!/usr/bin/env bash
# bench.sh — the per-PR bench runner: measures the translation hot path
# and the fleet control loop (go test -bench) and the full quick-scale
# experiment suite serial vs parallel, verifies the parallel run is
# byte-identical, verifies the translation-result cache and core-sharded
# stepping are output-transparent, and emits a machine-readable
# BENCH_<n>.json extending the perf trajectory. The previous PR's
# BENCH_<n-1>.json is required — it is embedded as the before_this_pr
# baseline so regressions are visible in one file; a missing or
# malformed baseline aborts the run rather than silently emitting a
# trajectory with a hole in it.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_10.json}
pr=$(basename "$out" .json | sed 's/^BENCH_//')
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# The baseline is checked before spending minutes benchmarking. Not
# every PR re-runs the bench, so fall back to the highest-numbered
# BENCH file below this one rather than demanding exactly pr-1.
prev=""
for ((k = pr - 1; k >= 1; k--)); do
    if [ -f "BENCH_$k.json" ]; then
        prev="BENCH_$k.json"
        break
    fi
done
if [ -z "$prev" ]; then
    echo "bench.sh: no baseline BENCH_<k>.json (k < $pr) found." >&2
    echo "bench.sh: the perf trajectory needs the pre-PR numbers; check out a" >&2
    echo "bench.sh: previous PR's BENCH file (or pass the right output name:" >&2
    echo "bench.sh: 'scripts/bench.sh BENCH_$pr.json' looks for the highest" >&2
    echo "bench.sh: BENCH below $pr beside it)." >&2
    exit 1
fi
before=$(awk '/"benchmarks_ns_per_op": \{/,/\}/' "$prev" | sed '1d;$d')
if [ -z "$before" ]; then
    echo "bench.sh: $prev is malformed: no benchmarks_ns_per_op object found." >&2
    echo "bench.sh: regenerate it at the pre-PR tree before benchmarking this one." >&2
    exit 1
fi
if echo "$before" | grep -Evq '^\s*"[^"]+": [0-9]+(\.[0-9]+)?,?\s*$'; then
    echo "bench.sh: $prev is malformed: benchmarks_ns_per_op has non-numeric entries:" >&2
    echo "$before" | grep -Ev '^\s*"[^"]+": [0-9]+(\.[0-9]+)?,?\s*$' >&2
    exit 1
fi
before_note="measured at the pre-PR tree ($prev), same benchmarks"

# run_bench PKG PATTERN OUT — one go test -bench invocation. A compile
# error, panic, or failed benchmark aborts the whole run with an explicit
# message instead of flowing a partial bench log into ns_of (which would
# either die on a missing line or, worse, emit a truncated BENCH json).
run_bench() {
    local pkg=$1 pattern=$2 outfile=$3
    if ! go test -run '^$' -bench "$pattern" -benchtime 1s "$pkg" \
        > "$outfile" 2> "$tmp/bench_err.txt"; then
        echo "bench.sh: FAIL: 'go test -bench $pattern $pkg' exited non-zero." >&2
        echo "bench.sh: no BENCH json was written; fix the benchmark and re-run." >&2
        echo "--- benchmark output ---" >&2
        cat "$outfile" "$tmp/bench_err.txt" >&2
        exit 1
    fi
    cat "$outfile"
}

echo "== micro-benchmarks (internal/sim + facade + fleet) =="
run_bench ./internal/sim/ 'BenchmarkTranslate$|BenchmarkMachineRun' "$tmp/bench_sim.txt"
run_bench . 'BenchmarkTLBLookup$|BenchmarkTranslateWalk$' "$tmp/bench_root.txt"
run_bench ./internal/fleet/ 'BenchmarkFleetEpoch$|BenchmarkFleetLoadEpoch$' "$tmp/bench_fleet.txt"

# ns_of NAME FILE — ns/op of one benchmark line ("Name-8  N  12.3 ns/op");
# fails loudly when the benchmark did not produce a number.
ns_of() {
    local ns
    ns=$(awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { print $3; exit }' "$2")
    if [ -z "$ns" ]; then
        echo "bench.sh: benchmark $1 produced no ns/op line in $2" >&2
        exit 1
    fi
    echo "$ns"
}
ns_translate=$(ns_of BenchmarkTranslate "$tmp/bench_sim.txt")
ns_run_base=$(ns_of 'BenchmarkMachineRun/Baseline' "$tmp/bench_sim.txt")
ns_run_bf=$(ns_of 'BenchmarkMachineRun/BabelFish' "$tmp/bench_sim.txt")
ns_run_noxc=$(ns_of 'BenchmarkMachineRun/BabelFishXCacheOff' "$tmp/bench_sim.txt")
ns_run_wide=$(ns_of 'BenchmarkMachineRun/BabelFishWide' "$tmp/bench_sim.txt")
ns_run_shard=$(ns_of 'BenchmarkMachineRun/BabelFishSharded' "$tmp/bench_sim.txt")
ns_run_victima=$(ns_of 'BenchmarkMachineRun/Victima' "$tmp/bench_sim.txt")
ns_run_coal=$(ns_of 'BenchmarkMachineRun/Coalesced' "$tmp/bench_sim.txt")
ns_tlb=$(ns_of BenchmarkTLBLookup "$tmp/bench_root.txt")
ns_walk=$(ns_of BenchmarkTranslateWalk "$tmp/bench_root.txt")
ns_fleet=$(ns_of BenchmarkFleetEpoch "$tmp/bench_fleet.txt")
ns_fleet_load=$(ns_of BenchmarkFleetLoadEpoch "$tmp/bench_fleet.txt")

# instr_of NAME FILE — the instrs/op metric of one MachineRun line. The
# classic and sharded schedules simulate different instruction mixes per
# op, so speedups are compared per simulated instruction, not per op.
instr_of() {
    local n
    n=$(awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { print $5; exit }' "$2")
    if [ -z "$n" ]; then
        echo "bench.sh: benchmark $1 produced no instrs/op metric in $2" >&2
        exit 1
    fi
    echo "$n"
}
instr_bf=$(instr_of 'BenchmarkMachineRun/BabelFish' "$tmp/bench_sim.txt")
instr_noxc=$(instr_of 'BenchmarkMachineRun/BabelFishXCacheOff' "$tmp/bench_sim.txt")
instr_wide=$(instr_of 'BenchmarkMachineRun/BabelFishWide' "$tmp/bench_sim.txt")
instr_shard=$(instr_of 'BenchmarkMachineRun/BabelFishSharded' "$tmp/bench_sim.txt")

xcache_machine_speedup=$(awk -v offns="$ns_run_noxc" -v offi="$instr_noxc" \
    -v onns="$ns_run_bf" -v oni="$instr_bf" \
    'BEGIN { printf "%.3f", (offns/offi)/(onns/oni) }')
shard_machine_speedup=$(awk -v cns="$ns_run_wide" -v ci="$instr_wide" \
    -v sns="$ns_run_shard" -v si="$instr_shard" \
    'BEGIN { printf "%.3f", (cns/ci)/(sns/si) }')

echo "== experiment suite wall-clock: jobs=1 vs jobs=4 =="
go build -o "$tmp/bfbench" ./cmd/bfbench

t0=$(date +%s%N)
"$tmp/bfbench" -quick -format json -jobs 1 -xcache-stats > "$tmp/serial.json" \
    2> "$tmp/xcache_stats.txt"
t1=$(date +%s%N)
"$tmp/bfbench" -quick -format json -jobs 4 > "$tmp/par.json"
t2=$(date +%s%N)

serial_s=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b-a)/1e9 }')
par_s=$(awk -v a="$t1" -v b="$t2" 'BEGIN { printf "%.3f", (b-a)/1e9 }')
speedup=$(awk -v s="$serial_s" -v p="$par_s" 'BEGIN { printf "%.2f", s/p }')

identical=true
if ! cmp -s "$tmp/serial.json" "$tmp/par.json"; then
    identical=false
    echo "FAIL: serial and jobs=4 suite output diverge" >&2
fi
echo "serial ${serial_s}s, jobs=4 ${par_s}s (speedup ${speedup}x), identical=$identical"

echo "== xcache transparency: suite -xcache=off vs on, plus hit rate =="
"$tmp/bfbench" -quick -format json -jobs 1 -xcache=off > "$tmp/noxcache.json"
xcache_identical=true
if ! cmp -s "$tmp/serial.json" "$tmp/noxcache.json"; then
    xcache_identical=false
    echo "FAIL: suite output diverges between -xcache=on and -xcache=off" >&2
fi
# The stats line rode on stderr of the serial run above:
# "bfbench: xcache hits=N misses=N hit_rate=0.NNNN stale=N fills=N ..."
xstats=$(grep '^bfbench: xcache ' "$tmp/xcache_stats.txt" || true)
if [ -z "$xstats" ]; then
    echo "bench.sh: bfbench -xcache-stats printed no stats line" >&2
    exit 1
fi
xcache_hits=$(echo "$xstats" | sed -n 's/.*hits=\([0-9]*\).*/\1/p')
xcache_misses=$(echo "$xstats" | sed -n 's/.* misses=\([0-9]*\).*/\1/p')
xcache_hit_rate=$(echo "$xstats" | sed -n 's/.*hit_rate=\([0-9.]*\).*/\1/p')
echo "$xstats (suite identical off vs on: $xcache_identical)"

echo "== core-sharded stepping: suite -core-shards=1 vs 4 =="
t3=$(date +%s%N)
"$tmp/bfbench" -quick -format json -jobs 1 -core-shards 1 > "$tmp/shards1.json"
t4=$(date +%s%N)
"$tmp/bfbench" -quick -format json -jobs 1 -core-shards 4 > "$tmp/shards4.json"
t5=$(date +%s%N)
shards1_s=$(awk -v a="$t3" -v b="$t4" 'BEGIN { printf "%.3f", (b-a)/1e9 }')
shards4_s=$(awk -v a="$t4" -v b="$t5" 'BEGIN { printf "%.3f", (b-a)/1e9 }')
shard_suite_speedup=$(awk -v s="$shards1_s" -v p="$shards4_s" 'BEGIN { printf "%.2f", s/p }')
shards_identical=true
if ! cmp -s "$tmp/shards1.json" "$tmp/shards4.json"; then
    shards_identical=false
    echo "FAIL: suite output diverges between -core-shards=1 and -core-shards=4" >&2
fi
echo "shards=1 ${shards1_s}s, shards=4 ${shards4_s}s (speedup ${shard_suite_speedup}x), identical=$shards_identical"

echo "== fleet chaos replay: seeded node kills, jobs=1 vs jobs=4 =="
go build -o "$tmp/bffleet" ./cmd/bffleet
fleet_flags=(-arch babelfish -nodes 8 -containers 16 -epochs 24
             -kill-nth 9 -kill-max 1 -part-nth 13 -part-max 1 -audit)
"$tmp/bffleet" "${fleet_flags[@]}" -jobs 1 > "$tmp/fleet_serial.txt"
"$tmp/bffleet" "${fleet_flags[@]}" -jobs 4 > "$tmp/fleet_par.txt"
fleet_identical=true
if ! cmp -s "$tmp/fleet_serial.txt" "$tmp/fleet_par.txt"; then
    fleet_identical=false
    echo "FAIL: fleet chaos run diverges between jobs=1 and jobs=4" >&2
fi
echo "fleet chaos replay identical=$fleet_identical"

echo "== open-loop offered load: flash-crowd overload, jobs=1 vs jobs=4 =="
load_flags=(-arch babelfish -nodes 4 -containers 8 -epochs 24
            -load-shape flash -load-rps 8 -load-peak 256 -queue-cap 8 -audit)
"$tmp/bffleet" "${load_flags[@]}" -jobs 1 > "$tmp/load_serial.txt"
"$tmp/bffleet" "${load_flags[@]}" -jobs 4 > "$tmp/load_par.txt"
load_identical=true
if ! cmp -s "$tmp/load_serial.txt" "$tmp/load_par.txt"; then
    load_identical=false
    echo "FAIL: open-loop flash-crowd run diverges between jobs=1 and jobs=4" >&2
fi
load_line=$(grep '^load:' "$tmp/load_serial.txt" || true)
if [ -z "$load_line" ]; then
    echo "bench.sh: bffleet -load-shape flash printed no load accounting line" >&2
    exit 1
fi
load_offered=$(echo "$load_line" | sed -n 's/.*offered \([0-9]*\).*/\1/p')
load_served=$(echo "$load_line" | sed -n 's/.*served \([0-9]*\).*/\1/p')
load_dropped=$(echo "$load_line" | sed -n 's/.*dropped \([0-9]*\).*/\1/p')
if [ "$load_dropped" -eq 0 ]; then
    echo "FAIL: the flash crowd never overflowed the bounded queues (dropped=0)" >&2
    load_identical=false
fi
echo "$load_line (replay identical=$load_identical)"

# Host metadata: ns/op numbers are only comparable across PRs when the
# host shape matches, so record enough to spot a host change in the
# trajectory (CPU count, effective GOMAXPROCS, OS/arch, toolchain).
ncpu=$(nproc 2>/dev/null || echo 1)
gomaxprocs=${GOMAXPROCS:-$ncpu}
cat > "$out" <<EOF
{
  "pr": $pr,
  "generated": "$(date -u +%FT%TZ)",
  "host": {
    "cpus": $ncpu,
    "gomaxprocs": $gomaxprocs,
    "os": "$(go env GOOS)",
    "arch": "$(go env GOARCH)",
    "go": "$(go env GOVERSION)"
  },
  "suite": {
    "command": "bfbench -quick -format json",
    "serial_seconds": $serial_s,
    "jobs4_seconds": $par_s,
    "speedup": $speedup,
    "output_identical": $identical,
    "note": "cells are independent machines, so the jobs=4 speedup scales with host CPUs; this run used a ${ncpu}-CPU host"
  },
  "xcache": {
    "suite_hits": $xcache_hits,
    "suite_misses": $xcache_misses,
    "suite_hit_rate": $xcache_hit_rate,
    "suite_output_identical_off_vs_on": $xcache_identical,
    "machine_run_speedup": $xcache_machine_speedup,
    "note": "machine_run_speedup = per-simulated-instruction time of MachineRun/BabelFishXCacheOff over MachineRun/BabelFish; replaying a cached hit repeats the modeled hit's stats/LRU bookkeeping to stay byte-identical, so the host-time win is small and can vanish into this host's noise band"
  },
  "sharding": {
    "suite_shards1_seconds": $shards1_s,
    "suite_shards4_seconds": $shards4_s,
    "suite_speedup": $shard_suite_speedup,
    "suite_output_identical_1_vs_4": $shards_identical,
    "machine_run_speedup": $shard_machine_speedup,
    "note": "machine_run_speedup = per-simulated-instruction time of MachineRun/BabelFishWide (4 cores, classic) over MachineRun/BabelFishSharded (4 cores, -core-shards=4); sharded stepping is byte-identical across widths >= 1 (a deterministic schedule distinct from classic 0); speedups are bounded by host CPUs — this run used a ${ncpu}-CPU host"
  },
  "fleet": {
    "command": "bffleet ${fleet_flags[*]}",
    "replay_identical": $fleet_identical
  },
  "load": {
    "command": "bffleet ${load_flags[*]}",
    "offered": $load_offered,
    "served": $load_served,
    "dropped": $load_dropped,
    "replay_identical": $load_identical,
    "note": "open-loop flash crowd against bounded per-container queues: arrivals are a pure function of (shape, seed, epoch), so overload shows up as drops and queueing delay, and the run replays byte-identically at any -jobs width"
  },
  "benchmarks_ns_per_op": {
    "BenchmarkTranslate": $ns_translate,
    "BenchmarkMachineRun/Baseline": $ns_run_base,
    "BenchmarkMachineRun/BabelFish": $ns_run_bf,
    "BenchmarkMachineRun/BabelFishXCacheOff": $ns_run_noxc,
    "BenchmarkMachineRun/BabelFishWide": $ns_run_wide,
    "BenchmarkMachineRun/BabelFishSharded": $ns_run_shard,
    "BenchmarkMachineRun/Victima": $ns_run_victima,
    "BenchmarkMachineRun/Coalesced": $ns_run_coal,
    "BenchmarkTLBLookup": $ns_tlb,
    "BenchmarkTranslateWalk": $ns_walk,
    "BenchmarkFleetEpoch": $ns_fleet,
    "BenchmarkFleetLoadEpoch": $ns_fleet_load
  },
  "before_this_pr_ns_per_op": {
    "note": "$before_note",
$before
  }
}
EOF
echo "wrote $out"
[ "$identical" = true ] && [ "$fleet_identical" = true ] && \
    [ "$xcache_identical" = true ] && [ "$shards_identical" = true ] && \
    [ "$load_identical" = true ]
