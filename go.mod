module babelfish

go 1.23
