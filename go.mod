module babelfish

go 1.22
