GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel engine's safety proof: machines share no mutable state.
race:
	$(GO) test -race ./internal/experiments/... ./internal/sim/...

# Regenerate BENCH_4.json: hot-path ns/op plus suite wall-clock serial
# vs jobs=4, failing if the parallel output is not byte-identical.
bench:
	./scripts/bench.sh BENCH_4.json
