GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel engine's safety proof: machines share no mutable state —
# neither across experiment cells nor across fleet nodes.
race:
	$(GO) test -race ./internal/experiments/... ./internal/sim/... ./internal/fleet/... ./internal/par/... ./internal/xlatpolicy/...

# Regenerate BENCH_8.json: hot-path and fleet-epoch ns/op plus suite
# wall-clock serial vs jobs=4, failing if the parallel output is not
# byte-identical or the previous BENCH_7.json baseline is missing.
bench:
	./scripts/bench.sh BENCH_8.json
